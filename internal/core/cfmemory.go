package core

import (
	"fmt"

	"cfm/internal/flight"
	"cfm/internal/memory"
	"cfm/internal/metrics"
	"cfm/internal/sim"
)

// AccessKind distinguishes the two CFM block operations.
type AccessKind int

// Block access kinds.
const (
	ReadBlock AccessKind = iota
	WriteBlock
)

// String names the kind for traces.
func (k AccessKind) String() string {
	if k == ReadBlock {
		return "read"
	}
	return "write"
}

// access is one in-flight block access.
type access struct {
	kind   AccessKind
	proc   int
	offset int
	start  sim.Slot
	buf    memory.Block
	done   func(memory.Block)
}

// CFMemory simulates the conflict-free memory of Fig. 3.2/3.5: b = c·n
// banks behind a synchronous interconnection, with every block access
// visiting all banks in AT-space order. It enforces — by panicking, since
// a violation would be an architecture bug, not a workload condition —
// the central invariant that no bank is ever addressed while busy.
//
// CFMemory deliberately performs no same-block coordination: concurrent
// writes to one block interleave exactly as Fig. 4.1 warns. The att
// package layers the address-tracking consistency mechanism on top.
type CFMemory struct {
	cfg Config
	at  *ATSpace
	// ar owns the banks' state as struct-of-arrays (busy-until slots,
	// statistics, paged word storage); banks are thin facades into it
	// for tests, snapshots, and higher layers.
	//cfm:no-save checkpointed through the banks facades sharing this arena
	ar    *memory.BankArena
	banks []*memory.Bank
	// cur holds each processor's in-flight accesses: at most one still in
	// its address phase plus one draining its final data words (c > 1
	// lets the next access begin while the previous one's last words are
	// in flight, §3.1.3).
	cur   [][]*access
	free  []sim.Slot // per-processor slot at which the address path frees
	trace *sim.Trace
	// pool recycles access records per processor so the steady state
	// allocates nothing; shard p only ever touches pool[p].
	//cfm:rebuilt
	pool [][]*access
	// id is the engine's parking handle (nil when driven manually, e.g.
	// inside a ClusterSystem): the memory parks once every processor's
	// in-flight list drains and is woken by the next begin.
	id *sim.Idler
	// stage holds each processor shard's deferred side effects (staged
	// bank visits, trace events, completion counts, done callbacks);
	// FinishShards (per slot) or FinishEpoch (per batched episode) folds
	// them in ascending processor order, reproducing the serial engine's
	// observable order exactly. Bank visits in particular are REPLAYED at
	// fold time: TickShard only records which bank an access addresses,
	// so shards never touch the shared arena and the memory has global
	// shard closure (EpochSafe) even though accesses started at different
	// slots hit the same bank on different slots.
	//cfm:no-save fold scratch, drained by FinishShards/FinishEpoch before any checkpoint boundary
	stage []procStage
	// folding guards against StartRead/StartWrite from inside an epoch
	// fold: an access begun there would have missed its bank visits for
	// the already-ticked remainder of the episode.
	//cfm:no-save reentrancy guard, always false outside a FinishEpoch fold
	folding bool
	// doneRebind, when set, reconstructs the completion callback of an
	// in-flight access while restoring a checkpoint (callbacks are code,
	// not data, so the snapshot records only their presence). LoadState
	// fails loudly when an access had a callback and no rebinder is set.
	doneRebind func(proc int, kind AccessKind, offset int, start sim.Slot) func(memory.Block)

	// Completed counts finished block accesses.
	Completed int64

	// Registry handle (nil when unobserved); added to in FinishShards,
	// so totals are deterministic at any worker count.
	mCompleted *metrics.Counter

	// Flight recorder (nil when unobserved). Issue events are emitted
	// directly (begin is a serial-context operation); bank-service and
	// retire events happen in shard context, so they are staged per
	// processor and folded in FinishShards like the trace events.
	flt *flight.Recorder
}

// bankVisit is one staged word transfer: the shard records which bank
// its access addresses at which slot; the serial fold performs the
// actual bank mutation (and emits the visit trace event) in ascending
// processor order. The AT-space theorem makes the deferral sound: at
// any slot distinct processors address distinct banks, so replaying a
// slot's visits in any processor order leaves the banks in the same
// state.
type bankVisit struct {
	a    *access
	slot sim.Slot
	bank int32
}

// doneEntry is a completed access whose callback fires at slot `at`
// during the fold (after that slot's bank visits have been replayed, so
// the assembled block is complete even when c = 1).
type doneEntry struct {
	a  *access
	at sim.Slot
}

// procStage buffers one processor shard's deferred side effects. The
// per-sink streams are slot-nondecreasing (a shard runs slots in
// order), which is what lets FinishEpoch merge them slot-major with the
// cursor fields.
type procStage struct {
	visits    []bankVisit    // staged in PhaseTransfer
	tFlights  []flight.Event // StageBankService, staged in PhaseTransfer
	events    []sim.Event    // completion trace events, staged in PhaseUpdate
	uFlights  []flight.Event // StageRetire, staged in PhaseUpdate
	completed int64
	done      []doneEntry

	// FinishEpoch's slot-major merge cursors (preallocated; the fold
	// must stay alloc-free).
	cVisit, cTF, cEv, cUF, cDone int
}

// NewCFMemory builds the memory for a configuration. trace may be nil.
func NewCFMemory(cfg Config, trace *sim.Trace) *CFMemory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &CFMemory{
		cfg:   cfg,
		at:    NewATSpace(cfg),
		ar:    memory.NewBankArena(cfg.Banks(), cfg.BankCycle),
		banks: make([]*memory.Bank, cfg.Banks()),
		cur:   make([][]*access, cfg.Processors),
		free:  make([]sim.Slot, cfg.Processors),
		trace: trace,
		pool:  make([][]*access, cfg.Processors),
		stage: make([]procStage, cfg.Processors),
	}
	for i := range m.banks {
		m.banks[i] = m.ar.Bank(i)
	}
	return m
}

// Instrument attaches registry metrics: a completed-access counter plus
// shared bank access/conflict counters across all banks (conflicts stay
// zero while the conflict-free invariant holds — the metric is a
// cross-check, not an expectation). Bank counters are atomic, so shard-
// context bank visits remain deterministic in total.
func (m *CFMemory) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	m.mCompleted = r.Counter("cfm_completed_total")
	acc := r.Counter("cfm_bank_accesses_total")
	conf := r.Counter("cfm_bank_conflicts_total")
	for i := 0; i < m.ar.Banks(); i++ {
		m.ar.Observe(i, acc, conf)
	}
}

// RecordFlight attaches a flight recorder: each block access spans from
// its issue to its retire, with one bank-service event at its first
// bank visit (the access then proceeds conflict-free through all b
// banks — that fixed sweep IS the service). Call before running; nil
// detaches.
func (m *CFMemory) RecordFlight(r *flight.Recorder) { m.flt = r }

// Config returns the configuration.
func (m *CFMemory) Config() Config { return m.cfg }

// ATSpace returns the partitioning in force.
func (m *CFMemory) ATSpace() *ATSpace { return m.at }

// Bank exposes a bank for tests and higher layers.
func (m *CFMemory) Bank(i int) *memory.Bank { return m.banks[i] }

// PeekBlock reads a block without simulated timing (for assertions).
func (m *CFMemory) PeekBlock(offset int) memory.Block {
	b := make(memory.Block, len(m.banks))
	for i := range b {
		b[i] = m.ar.Peek(i, offset)
	}
	return b
}

// PokeBlock writes a block without simulated timing.
func (m *CFMemory) PokeBlock(offset int, blk memory.Block) {
	if len(blk) != len(m.banks) {
		panic(fmt.Sprintf("core: block of %d words, want %d", len(blk), len(m.banks)))
	}
	for i := range blk {
		m.ar.Poke(i, offset, blk[i])
	}
}

// CanStart reports whether processor p may begin a new block access at
// slot t: its address path must be free (one slot per bank for the
// previous access), even though the final data words of the previous
// access may still be in flight.
func (m *CFMemory) CanStart(t sim.Slot, p int) bool {
	return t >= m.free[p]
}

// StartRead begins a block read by processor p at slot t. done receives
// the assembled block at the completion slot. It returns the completion
// slot. Call only when CanStart.
func (m *CFMemory) StartRead(t sim.Slot, p, offset int, done func(memory.Block)) sim.Slot {
	a := m.alloc(p)
	a.kind, a.offset, a.done = ReadBlock, offset, done
	m.begin(t, p, a)
	return m.at.CompletionSlot(t)
}

// StartWrite begins a block write of data by processor p at slot t. done,
// if non-nil, runs at the completion slot. It returns the completion slot.
func (m *CFMemory) StartWrite(t sim.Slot, p, offset int, data memory.Block, done func(memory.Block)) sim.Slot {
	if len(data) != m.cfg.Banks() {
		panic(fmt.Sprintf("core: write block of %d words, want %d", len(data), m.cfg.Banks()))
	}
	a := m.alloc(p)
	a.kind, a.offset, a.done = WriteBlock, offset, done
	copy(a.buf, data)
	m.begin(t, p, a)
	return m.at.CompletionSlot(t)
}

// alloc takes an access record off processor p's free list, ensuring its
// buffer has block size (reads overwrite every word, writes copy over it,
// so stale contents never leak).
func (m *CFMemory) alloc(p int) *access {
	var a *access
	if n := len(m.pool[p]); n > 0 {
		a = m.pool[p][n-1]
		m.pool[p] = m.pool[p][:n-1]
	} else {
		a = &access{proc: p}
	}
	if len(a.buf) != m.cfg.Banks() {
		a.buf = make(memory.Block, m.cfg.Banks())
	}
	return a
}

// recycle returns a completed access to its processor's free list. The
// buffer is kept only when no callback saw it: done callbacks may retain
// the block they were handed, so those buffers are surrendered to the GC.
func (m *CFMemory) recycle(a *access) {
	if a.done != nil {
		a.buf = nil
		a.done = nil
	}
	m.pool[a.proc] = append(m.pool[a.proc], a)
}

// begin admits a new access. It records the issue trace event directly,
// so StartRead/StartWrite are serial-context operations: a Shardable
// driver may call them concurrently for distinct processors only while
// tracing is disabled (nil or Disabled trace); with tracing on, issue
// from single-threaded code so event order stays deterministic.
func (m *CFMemory) begin(t sim.Slot, p int, a *access) {
	if m.folding {
		panic(fmt.Sprintf("core: processor %d started an access at slot %d during an epoch fold; "+
			"issue from a ticker (which disables batching) or SetEpochBatch(1)", p, t))
	}
	if !m.CanStart(t, p) {
		panic(fmt.Sprintf("core: processor %d started an access at slot %d while busy", p, t))
	}
	a.start = t
	m.cur[p] = append(m.cur[p], a)
	m.free[p] = t + sim.Slot(m.cfg.Banks())
	m.id.Wake()
	if m.trace.Enabled() {
		m.trace.Add(t, fmt.Sprintf("P%d", p), "issue %s offset %d", a.kind, a.offset)
	}
	if m.flt.Enabled() {
		m.flt.Emit(flight.ComposeID(p, t), t, flight.StageIssue, int32(p), int64(a.offset))
	}
}

// BindIdler implements sim.Parker.
func (m *CFMemory) BindIdler(id *sim.Idler) { m.id = id }

// Tick implements sim.Ticker by delegating to the shard path, so the
// serial and parallel engines execute identical code. Bank visits
// happen in PhaseTransfer; completions fire in PhaseUpdate of the
// completion slot.
func (m *CFMemory) Tick(t sim.Slot, ph sim.Phase) { sim.SerialTick(m, t, ph) }

// PhaseMask implements sim.PhaseMasker: the memory is idle during
// PhaseIssue and PhaseConnect.
func (m *CFMemory) PhaseMask() sim.PhaseMask {
	return sim.MaskOf(sim.PhaseTransfer, sim.PhaseUpdate)
}

// Horizon implements sim.Horizoner. An access in its address phase
// visits a bank every slot (observable work), so it pins the horizon to
// now; one draining its final data words (c > 1) does nothing until its
// completion slot, when PhaseUpdate completes it. With no accesses in
// flight the memory has no events of its own — drivers above it are
// separate tickers with their own horizons.
func (m *CFMemory) Horizon(now sim.Slot) sim.Slot {
	h := sim.HorizonNone
	for p := range m.cur {
		for _, a := range m.cur[p] {
			if now <= a.start+sim.Slot(m.cfg.Banks()-1) {
				return now
			}
			if v := m.at.CompletionSlot(a.start); v < h {
				h = v
			}
		}
	}
	if h < now {
		return now
	}
	return h
}

// Shards implements sim.Shardable: one shard per processor. The AT-space
// theorem (§3.1.2) is what makes this sound — at any slot, distinct
// processors' in-flight accesses address distinct banks, so processor
// shards never touch the same bank concurrently.
func (m *CFMemory) Shards() int { return m.cfg.Processors }

// TickShard implements sim.Shardable: processor p's bank visits
// (PhaseTransfer) and completion detection (PhaseUpdate). Shards touch
// only shard-owned state: bank visits are STAGED here (which bank, which
// slot) and replayed against the shared arena by the serial fold, so
// side effects that must appear in global processor order — bank
// mutations, trace events, Completed, done callbacks — all fold in
// FinishShards/FinishEpoch.
func (m *CFMemory) TickShard(t sim.Slot, ph sim.Phase, p int) {
	switch ph {
	case sim.PhaseTransfer:
		st := &m.stage[p]
		for _, a := range m.cur[p] {
			k := int(t - a.start)
			if k < 0 || k >= m.cfg.Banks() {
				continue // waiting out the final pipeline stages (c > 1)
			}
			bank := m.at.VisitBank(a.start, p, k)
			if k == 0 && m.flt.Enabled() {
				st.tFlights = append(st.tFlights, flight.Event{
					ID: flight.ComposeID(p, a.start), Slot: t,
					Stage: flight.StageBankService, Actor: int32(bank),
					Arg: int64(m.cfg.Banks())})
			}
			st.visits = append(st.visits, bankVisit{a: a, slot: t, bank: int32(bank)})
		}
	case sim.PhaseUpdate:
		q := m.cur[p]
		keep := q[:0]
		st := &m.stage[p]
		for _, a := range q {
			if t < m.at.CompletionSlot(a.start) {
				keep = append(keep, a)
				continue
			}
			st.completed++
			if m.trace.Enabled() {
				st.events = append(st.events, sim.Event{Slot: t, Who: fmt.Sprintf("P%d", p),
					What: fmt.Sprintf("complete %s offset %d", a.kind, a.offset)})
			}
			if m.flt.Enabled() {
				st.uFlights = append(st.uFlights, flight.Event{
					ID: flight.ComposeID(p, a.start), Slot: t,
					Stage: flight.StageRetire, Actor: int32(p),
					Arg: int64(t - a.start)})
			}
			if a.done != nil {
				st.done = append(st.done, doneEntry{a: a, at: t})
			} else {
				m.recycle(a) // shard context: a.proc == p, so pool[p] only
			}
		}
		m.cur[p] = keep
	}
}

// FinishShards implements sim.ShardFinalizer: fold each processor's
// staged effects in ascending order. PhaseTransfer replays the staged
// bank visits (the dense arena sweep — the only place banks mutate);
// PhaseUpdate drains each processor's trace events, then its completion
// count, then its done callbacks — matching the serial engine's
// historical event order byte for byte.
func (m *CFMemory) FinishShards(t sim.Slot, ph sim.Phase) {
	switch ph {
	case sim.PhaseTransfer:
		for p := range m.stage {
			st := &m.stage[p]
			for i := range st.visits {
				m.replay(&st.visits[i])
			}
			st.visits = st.visits[:0]
			for _, ev := range st.tFlights {
				m.flt.Append(ev) //cfm:flight-ok fold drain; st.tFlights stays empty while recording is off
			}
			st.tFlights = st.tFlights[:0]
		}
	case sim.PhaseUpdate:
		for p := range m.stage {
			st := &m.stage[p]
			for _, e := range st.events {
				m.trace.AddEvent(e)
			}
			st.events = st.events[:0]
			for _, ev := range st.uFlights {
				m.flt.Append(ev) //cfm:flight-ok fold drain; st.uFlights stays empty while recording is off
			}
			st.uFlights = st.uFlights[:0]
			m.Completed += st.completed
			m.mCompleted.Add(st.completed)
			st.completed = 0
			for _, d := range st.done {
				d.a.done(d.a.buf)
				m.recycle(d.a)
			}
			st.done = st.done[:0]
		}
		// Park once fully drained. A done callback above may have begun a
		// new access (and woken us), which this check then sees in cur.
		drained := true
		for p := range m.cur {
			if len(m.cur[p]) > 0 {
				drained = false
				break
			}
		}
		if drained {
			m.id.Park()
		}
	}
}

// EpochSafe implements sim.EpochSafeTicker. TickShard only reads
// shard-owned access lists and the immutable AT-space, and stages every
// bank visit instead of performing it, so a processor shard touches no
// shared state in any phase of any slot — the bank mutations, which DO
// cross shards across slots (accesses started at different slots visit
// the same bank on different slots), all happen in the serial fold.
func (m *CFMemory) EpochSafe() bool { return true }

// FinishEpoch implements sim.EpochFinisher: one fold for the whole
// episode [from, to), leaving the banks and every sink byte-identical
// to per-slot FinishShards calls. Each processor's staged streams are
// slot-nondecreasing, so a slot-major merge with per-shard cursors
// reproduces the serial (slot, phase, processor, emission) order
// exactly: for each slot, first the Transfer fold (bank-visit replay in
// ascending processor order — the arena mutation order the serial
// engine would have produced), then the Update fold (trace events,
// flight retires, done callbacks). Completion counters are commutative
// and fold once at the end, like Partial's.
func (m *CFMemory) FinishEpoch(from, to sim.Slot) {
	m.folding = true
	for p := range m.stage {
		st := &m.stage[p]
		st.cVisit, st.cTF, st.cEv, st.cUF, st.cDone = 0, 0, 0, 0, 0
	}
	for t := from; t < to; t++ {
		for p := range m.stage {
			st := &m.stage[p]
			for st.cVisit < len(st.visits) && st.visits[st.cVisit].slot <= t {
				m.replay(&st.visits[st.cVisit])
				st.cVisit++
			}
			for st.cTF < len(st.tFlights) && st.tFlights[st.cTF].Slot <= t {
				m.flt.Append(st.tFlights[st.cTF]) //cfm:flight-ok fold drain; st.tFlights stays empty while recording is off
				st.cTF++
			}
		}
		for p := range m.stage {
			st := &m.stage[p]
			for st.cEv < len(st.events) && st.events[st.cEv].Slot <= t {
				m.trace.AddEvent(st.events[st.cEv])
				st.cEv++
			}
			for st.cUF < len(st.uFlights) && st.uFlights[st.cUF].Slot <= t {
				m.flt.Append(st.uFlights[st.cUF]) //cfm:flight-ok fold drain; st.uFlights stays empty while recording is off
				st.cUF++
			}
			for st.cDone < len(st.done) && st.done[st.cDone].at <= t {
				d := st.done[st.cDone]
				d.a.done(d.a.buf)
				m.recycle(d.a)
				st.cDone++
			}
		}
	}
	for p := range m.stage {
		st := &m.stage[p]
		m.Completed += st.completed
		m.mCompleted.Add(st.completed)
		st.completed = 0
		st.visits = st.visits[:0]
		st.tFlights = st.tFlights[:0]
		st.events = st.events[:0]
		st.uFlights = st.uFlights[:0]
		st.done = st.done[:0]
	}
	m.folding = false
	// Park once fully drained — an episode edge, as the epoch contract
	// requires.
	drained := true
	for p := range m.cur {
		if len(m.cur[p]) > 0 {
			drained = false
			break
		}
	}
	if drained {
		m.id.Park()
	}
}

// replay performs one staged word transfer against the arena and emits
// its trace event — always from a serial fold, never a shard.
func (m *CFMemory) replay(v *bankVisit) {
	a, t, bank := v.a, v.slot, int(v.bank)
	switch a.kind {
	case ReadBlock:
		w, ok := m.ar.Read(t, bank, a.offset)
		if !ok {
			panic(fmt.Sprintf("core: CFM invariant violated: bank %d busy at slot %d (read by P%d)", bank, t, a.proc))
		}
		a.buf[bank] = w
	case WriteBlock:
		if ok := m.ar.Write(t, bank, a.offset, a.buf[bank]); !ok {
			panic(fmt.Sprintf("core: CFM invariant violated: bank %d busy at slot %d (write by P%d)", bank, t, a.proc))
		}
	}
	if m.trace.Enabled() {
		m.trace.Add(t, fmt.Sprintf("Bank%d", bank), "%s word (P%d, offset %d)", a.kind, a.proc, a.offset)
	}
}

// Busy reports whether processor p has any access in flight (including
// one still draining its final data words).
func (m *CFMemory) Busy(p int) bool { return len(m.cur[p]) > 0 }
