package core

import (
	"testing"

	"cfm/internal/sim"
)

// fig314Config is the system of Fig. 3.14: 64 processors, 8 conflict-free
// modules, 16-word blocks, bank cycle 2, β = 17.
func fig314Config(locality, rate float64, seed uint64) PartialConfig {
	return PartialConfig{
		Processors: 64, Modules: 8, BlockWords: 16, BankCycle: 2,
		Locality: locality, AccessRate: rate, RetryMean: 4, Seed: seed,
	}
}

func runPartial(t *testing.T, cfg PartialConfig, slots int64) *Partial {
	t.Helper()
	p := NewPartial(cfg)
	clk := sim.NewClock()
	clk.Register(p)
	clk.Run(slots)
	return p
}

func TestPartialConfigValidate(t *testing.T) {
	if err := fig314Config(0.9, 0.02, 1).Validate(); err != nil {
		t.Fatalf("Fig 3.14 config rejected: %v", err)
	}
	bads := []PartialConfig{
		{Processors: 0, Modules: 1, BlockWords: 2, BankCycle: 2, RetryMean: 1},
		{Processors: 4, Modules: 0, BlockWords: 2, BankCycle: 2, RetryMean: 1},
		{Processors: 4, Modules: 2, BlockWords: 0, BankCycle: 2, RetryMean: 1},
		{Processors: 4, Modules: 2, BlockWords: 4, BankCycle: 0, RetryMean: 1},
		{Processors: 4, Modules: 2, BlockWords: 4, BankCycle: 2, Locality: 1.5, RetryMean: 1},
		{Processors: 4, Modules: 2, BlockWords: 4, BankCycle: 2, AccessRate: -1, RetryMean: 1},
		{Processors: 4, Modules: 2, BlockWords: 4, BankCycle: 2, RetryMean: 0},
		{Processors: 5, Modules: 2, BlockWords: 4, BankCycle: 2, RetryMean: 1}, // n % m != 0
		{Processors: 4, Modules: 2, BlockWords: 3, BankCycle: 2, RetryMean: 1}, // words % c != 0
		{Processors: 8, Modules: 2, BlockWords: 4, BankCycle: 2, RetryMean: 1}, // cluster size mismatch
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPartialDerived(t *testing.T) {
	cfg := fig314Config(0.9, 0.02, 1)
	if cfg.BlockTime() != 17 {
		t.Errorf("BlockTime = %d, want 17", cfg.BlockTime())
	}
	if cfg.ClusterSize() != 8 {
		t.Errorf("ClusterSize = %d, want 8", cfg.ClusterSize())
	}
	if cfg.Cluster(17) != 2 {
		t.Errorf("Cluster(17) = %d, want 2", cfg.Cluster(17))
	}
	if cfg.ContentionSet(17) != 1 {
		t.Errorf("ContentionSet(17) = %d, want 1", cfg.ContentionSet(17))
	}
}

// TestPartialFullLocalityIsConflictFree: with λ = 1 every access is
// local, and a conflict-free cluster never conflicts internally.
func TestPartialFullLocalityIsConflictFree(t *testing.T) {
	p := runPartial(t, fig314Config(1.0, 0.05, 2), 200000)
	if p.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if p.Retries != 0 {
		t.Fatalf("λ=1 saw %d retries, want 0 (local accesses are conflict-free)", p.Retries)
	}
	if e := p.Efficiency(); e != 1.0 {
		t.Fatalf("λ=1 efficiency = %v, want 1.0", e)
	}
}

// TestPartialEfficiencyRisesWithLocality is the ordering of the curves in
// Fig. 3.14: higher locality ⇒ higher efficiency at the same rate.
func TestPartialEfficiencyRisesWithLocality(t *testing.T) {
	var prev float64 = -1
	for _, lam := range []float64{0.3, 0.5, 0.7, 0.9} {
		p := runPartial(t, fig314Config(lam, 0.04, 3), 300000)
		e := p.Efficiency()
		if e <= prev {
			t.Fatalf("efficiency at λ=%v is %v, not above %v", lam, e, prev)
		}
		prev = e
	}
}

// TestPartialEfficiencyFallsWithRate: the downward slope of each curve.
func TestPartialEfficiencyFallsWithRate(t *testing.T) {
	var prev float64 = 2
	for _, r := range []float64{0.01, 0.03, 0.06} {
		p := runPartial(t, fig314Config(0.5, r, 4), 300000)
		e := p.Efficiency()
		if e >= prev {
			t.Fatalf("efficiency at r=%v is %v, not below %v", r, e, prev)
		}
		prev = e
	}
}

// TestPartialBeatsConventional: the headline comparison of Figs. 3.14 and
// 3.15 — at moderate locality and a high access rate, the partially
// conflict-free system is substantially more efficient than a
// conventional system with the same interconnect connectivity.
func TestPartialBeatsConventional(t *testing.T) {
	p := runPartial(t, fig314Config(0.7, 0.05, 5), 300000)
	// The paper's conventional comparator at r = 0.05 has efficiency well
	// below 0.4 (Fig. 3.14); the λ = 0.7 partial system stays far above.
	if e := p.Efficiency(); e < 0.6 {
		t.Fatalf("partial λ=0.7 efficiency = %v, want > 0.6", e)
	}
}

func TestPartialLocalityAccounting(t *testing.T) {
	p := runPartial(t, fig314Config(0.9, 0.03, 6), 200000)
	total := p.LocalAcc + p.RemoteAcc
	if total == 0 {
		t.Fatal("no accesses issued")
	}
	frac := float64(p.LocalAcc) / float64(total)
	if frac < 0.88 || frac > 0.92 {
		t.Fatalf("local fraction %v, want ~0.9", frac)
	}
}

func TestPartialSingleModule(t *testing.T) {
	// m = 1 degenerates to the fully conflict-free CFM: every processor
	// has its own contention set and nothing ever conflicts.
	cfg := PartialConfig{
		Processors: 8, Modules: 1, BlockWords: 16, BankCycle: 2,
		Locality: 0, AccessRate: 0.05, RetryMean: 4, Seed: 7,
	}
	p := runPartial(t, cfg, 100000)
	if p.Retries != 0 {
		t.Fatalf("single-module CFM saw %d retries", p.Retries)
	}
}

func TestPartialDeterministicBySeed(t *testing.T) {
	cfg := fig314Config(0.7, 0.04, 42)
	a := runPartial(t, cfg, 50000)
	b := runPartial(t, cfg, 50000)
	if a.Completed != b.Completed || a.Retries != b.Retries || a.TotalLatency != b.TotalLatency {
		t.Fatal("same seed produced different results")
	}
}

func TestPartialPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewPartial(PartialConfig{})
}

func TestPartialEfficiencyBeforeCompletion(t *testing.T) {
	p := NewPartial(fig314Config(0.5, 0.01, 8))
	if p.Efficiency() != 1 || p.MeanLatency() != 0 {
		t.Fatal("pre-run statistics wrong")
	}
}
