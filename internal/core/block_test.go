package core

import (
	"testing"

	"cfm/internal/sim"
)

func TestBuildingBlockValidate(t *testing.T) {
	if err := FourBankBoard(32).Validate(); err != nil {
		t.Fatalf("four-bank board rejected: %v", err)
	}
	if err := EightBankBoard(16).Validate(); err != nil {
		t.Fatalf("eight-bank board rejected: %v", err)
	}
	bads := []BuildingBlock{
		{Ports: 0, Banks: 4, WordWidth: 8, BankCycle: 1},
		{Ports: 4, Banks: 0, WordWidth: 8, BankCycle: 1},
		{Ports: 4, Banks: 4, WordWidth: 0, BankCycle: 1},
		{Ports: 4, Banks: 4, WordWidth: 8, BankCycle: 0},
		{Ports: 4, Banks: 6, WordWidth: 8, BankCycle: 1}, // b != c·n
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad board %d accepted", i)
		}
	}
}

func TestIntegrateGrowsTheMachine(t *testing.T) {
	// Four eight-bank boards → 16 processors, 32 banks, c = 2.
	cfg, err := Integrate(EightBankBoard(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Processors != 16 || cfg.Banks() != 32 || cfg.BankCycle != 2 {
		t.Fatalf("composed config %v", cfg)
	}
	// And the result actually runs conflict-free.
	mem := NewCFMemory(cfg, nil)
	clk := sim.NewClock()
	clk.Register(mem)
	for p := 0; p < cfg.Processors; p++ {
		mem.StartRead(0, p, 0, nil)
	}
	clk.Run(int64(cfg.BlockTime()) + 2)
	if mem.Completed != int64(cfg.Processors) {
		t.Fatalf("completed %d of %d", mem.Completed, cfg.Processors)
	}
}

func TestIntegrateSingleBoard(t *testing.T) {
	cfg, err := Integrate(FourBankBoard(64), 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Processors != 4 || cfg.Banks() != 4 {
		t.Fatalf("single board config %v", cfg)
	}
}

func TestIntegrateErrors(t *testing.T) {
	if _, err := Integrate(BuildingBlock{}, 2); err == nil {
		t.Fatal("invalid board accepted")
	}
	if _, err := Integrate(FourBankBoard(8), 0); err == nil {
		t.Fatal("zero boards accepted")
	}
}

func TestIntegrateModular(t *testing.T) {
	// Eight four-bank boards as modules: 32 processors, 8 modules,
	// 4-word blocks — block size stays at the BOARD's size.
	cfg, err := IntegrateModular(FourBankBoard(8), 8, 0.03, 0.8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Processors != 32 || cfg.Modules != 8 || cfg.BlockWords != 4 {
		t.Fatalf("modular config %+v", cfg)
	}
	p := NewPartial(cfg)
	clk := sim.NewClock()
	clk.Register(p)
	clk.Run(100000)
	if p.Completed == 0 {
		t.Fatal("modular machine served nothing")
	}
}

func TestIntegrateModularErrors(t *testing.T) {
	if _, err := IntegrateModular(BuildingBlock{}, 2, 0.1, 0.5, 4, 1); err == nil {
		t.Fatal("invalid board accepted")
	}
	if _, err := IntegrateModular(FourBankBoard(8), 0, 0.1, 0.5, 4, 1); err == nil {
		t.Fatal("zero boards accepted")
	}
	if _, err := IntegrateModular(FourBankBoard(8), 2, 5, 0.5, 4, 1); err == nil {
		t.Fatal("bad rate accepted")
	}
}

// TestBlockVsModularTradeoff: the same 8 boards composed the two ways
// show the Table 3.5 trade-off — the monolithic composition has a longer
// block time but zero conflicts; the modular one has short blocks but
// admits remote conflicts.
func TestBlockVsModularTradeoff(t *testing.T) {
	board := FourBankBoard(8)
	mono, err := Integrate(board, 8)
	if err != nil {
		t.Fatal(err)
	}
	modular, err := IntegrateModular(board, 8, 0.03, 0.5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mono.BlockTime() <= modular.BlockTime() {
		t.Fatalf("monolithic β %d not above modular β %d", mono.BlockTime(), modular.BlockTime())
	}
	p := NewPartial(modular)
	clk := sim.NewClock()
	clk.Register(p)
	clk.Run(200000)
	if p.Retries == 0 {
		t.Fatal("modular machine at λ=0.5 showed no conflicts (expected some)")
	}
}
