package core

import (
	"fmt"

	"cfm/internal/memory"
	"cfm/internal/metrics"
	"cfm/internal/sim"
)

// ClusterSystem models the multi-cluster CFM extension of Fig. 3.12: each
// conflict-free cluster installs fewer processors than it has AT-space
// divisions, and the free time slots serve remote memory access requests
// arriving over an inter-cluster interconnection. A remote access is
// "just a slower regular memory access": it pays the link latency both
// ways and waits for the serving cluster's free slot, but introduces no
// memory or network contention inside the serving cluster.
type ClusterSystem struct {
	cfg       Config // per-cluster configuration (Processors = AT divisions)
	localProc int    // processors actually installed per cluster
	linkDelay int    // one-way inter-cluster link latency, cycles
	clusters  []*CFMemory
	// freeDiv is the AT-space division index lent to remote service in
	// each cluster (the first division not occupied by a local processor).
	freeDiv int
	// queue of pending remote requests per serving cluster.
	queues []sim.Queue[*remoteReq]
	// serving tracks, per cluster, the remote requests currently occupying
	// the free division (dispatched, reply not yet staged). Explicit
	// tracking — rather than leaving the request captured only inside the
	// memory's completion closure — is what lets a checkpoint record
	// in-service remote work and a restore rebuild the closures.
	serving [][]*servingRec
	// Optional inter-cluster topology (§3.3); when set, link delays are
	// Hops × perHop instead of the flat linkDelay.
	topo   Topology
	perHop int
	// stage buffers each cluster shard's deferred side effects (remote
	// completion counts and reply callbacks); FinishShards folds them in
	// ascending cluster order.
	//cfm:rebuilt
	stage []clusterStage

	// RemoteCompleted counts served remote accesses.
	RemoteCompleted int64

	// Registry handle (nil when unobserved); added to in FinishShards.
	mRemote *metrics.Counter

	// id is the engine's parking handle (nil when driven manually).
	id *sim.Idler

	// replyRebind reconstructs a harness replyTo callback while restoring
	// a checkpoint (set via SetReplyRebinder; required only when the
	// snapshot holds queued or in-service requests that carried one).
	replyRebind func(cluster int, kind AccessKind, offset int, arrive sim.Slot) func(memory.Block, sim.Slot)
	// localDoneRebind reconstructs a harness local-access callback while
	// restoring (set via SetLocalDoneRebinder).
	localDoneRebind func(cluster, proc int, kind AccessKind, offset int, start sim.Slot) func(memory.Block)
}

// clusterStage buffers one cluster shard's per-phase side effects.
type clusterStage struct {
	remote  int64
	replies []func()
}

type remoteReq struct {
	kind    AccessKind
	offset  int
	data    memory.Block
	arrive  sim.Slot // when the request reaches the serving cluster
	replyTo func(memory.Block, sim.Slot)
	// replyDelay is the return-leg latency; −1 means use the system's
	// flat link delay.
	replyDelay int
}

// servingRec pairs an in-service remote request with its dispatch slot —
// everything makeReply needs, so the reply closure can be rebuilt from a
// checkpoint.
type servingRec struct {
	req   *remoteReq
	start sim.Slot // slot the request was dispatched onto the free division
}

// NewClusterSystem builds numClusters clusters with the given per-cluster
// configuration, localProc (< cfg.Processors) installed processors each,
// and the given one-way link delay. The remaining divisions serve remote
// requests.
func NewClusterSystem(cfg Config, numClusters, localProc, linkDelay int) *ClusterSystem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if numClusters < 1 {
		panic(fmt.Sprintf("core: need >=1 cluster, got %d", numClusters))
	}
	if localProc < 0 || localProc >= cfg.Processors {
		panic(fmt.Sprintf("core: local processors %d must leave a free division (config has %d)",
			localProc, cfg.Processors))
	}
	if linkDelay < 0 {
		panic(fmt.Sprintf("core: negative link delay %d", linkDelay))
	}
	cs := &ClusterSystem{
		cfg:       cfg,
		localProc: localProc,
		linkDelay: linkDelay,
		freeDiv:   localProc,
		queues:    make([]sim.Queue[*remoteReq], numClusters),
		serving:   make([][]*servingRec, numClusters),
		stage:     make([]clusterStage, numClusters),
	}
	for i := 0; i < numClusters; i++ {
		cs.clusters = append(cs.clusters, NewCFMemory(cfg, nil))
	}
	return cs
}

// Instrument attaches registry metrics: a served-remote-access counter
// plus every member cluster's CFMemory instrumentation (bank counters
// aggregate across clusters because Registry.Counter returns one shared
// handle per name).
func (cs *ClusterSystem) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	cs.mRemote = r.Counter("cluster_remote_completed_total")
	for _, cl := range cs.clusters {
		cl.Instrument(r)
	}
}

// Cluster exposes cluster i's memory.
func (cs *ClusterSystem) Cluster(i int) *CFMemory { return cs.clusters[i] }

// LocalProcessors returns the installed processors per cluster.
func (cs *ClusterSystem) LocalProcessors() int { return cs.localProc }

// LocalRead starts an ordinary conflict-free read by processor p (< local
// processors) of its own cluster.
func (cs *ClusterSystem) LocalRead(t sim.Slot, cluster, p, offset int, done func(memory.Block)) sim.Slot {
	if p >= cs.localProc {
		panic(fmt.Sprintf("core: local processor %d out of range [0,%d)", p, cs.localProc))
	}
	cs.id.Wake()
	return cs.clusters[cluster].StartRead(t, p, offset, done)
}

// LocalWrite starts an ordinary conflict-free write.
func (cs *ClusterSystem) LocalWrite(t sim.Slot, cluster, p, offset int, data memory.Block, done func(memory.Block)) sim.Slot {
	if p >= cs.localProc {
		panic(fmt.Sprintf("core: local processor %d out of range [0,%d)", p, cs.localProc))
	}
	cs.id.Wake()
	return cs.clusters[cluster].StartWrite(t, p, offset, data, done)
}

// RemoteRead issues a read from a processor in fromCluster against the
// memory of toCluster via the memory-mapped inter-cluster port. done
// receives the block and the slot at which the reply arrives back.
func (cs *ClusterSystem) RemoteRead(t sim.Slot, toCluster, offset int, done func(memory.Block, sim.Slot)) {
	cs.id.Wake()
	cs.queues[toCluster].Push(&remoteReq{
		kind: ReadBlock, offset: offset,
		arrive: t + sim.Slot(cs.linkDelay), replyTo: done, replyDelay: -1,
	})
}

// RemoteWrite issues a write against toCluster's memory.
func (cs *ClusterSystem) RemoteWrite(t sim.Slot, toCluster, offset int, data memory.Block, done func(memory.Block, sim.Slot)) {
	cs.id.Wake()
	cs.queues[toCluster].Push(&remoteReq{
		kind: WriteBlock, offset: offset, data: data.Clone(),
		arrive: t + sim.Slot(cs.linkDelay), replyTo: done, replyDelay: -1,
	})
}

// Tick implements sim.Ticker by delegating to the shard path, so the
// serial and parallel engines execute identical code: it drives every
// cluster's memory and, in the issue phase, dispatches queued remote
// requests onto each cluster's free AT-space division.
func (cs *ClusterSystem) Tick(t sim.Slot, ph sim.Phase) { sim.SerialTick(cs, t, ph) }

// PhaseMask implements sim.PhaseMasker: dispatch happens in PhaseIssue
// and the member CFMemories only work in PhaseTransfer/PhaseUpdate.
func (cs *ClusterSystem) PhaseMask() sim.PhaseMask {
	return sim.MaskOf(sim.PhaseIssue, sim.PhaseTransfer, sim.PhaseUpdate)
}

// BindIdler implements sim.Parker. The member CFMemories are driven
// manually (never registered), so their own handles stay nil; the system
// parks as one unit once every cluster drains.
func (cs *ClusterSystem) BindIdler(id *sim.Idler) { cs.id = id }

// Horizon implements sim.Horizoner: the earliest member-memory event or
// remote-dispatch opportunity. A queued request can dispatch no earlier
// than both its link arrival and the serving cluster's free division
// becoming free, and dispatch polls every slot after that, so the max of
// the two bounds the next observable slot for that queue.
func (cs *ClusterSystem) Horizon(now sim.Slot) sim.Slot {
	h := sim.HorizonNone
	for ci, cl := range cs.clusters {
		if v := cl.Horizon(now); v < h {
			h = v
		}
		if !cs.queues[ci].Empty() {
			v := (*cs.queues[ci].Peek()).arrive
			if f := cl.free[cs.freeDiv]; f > v {
				v = f
			}
			if v < h {
				h = v
			}
		}
	}
	if h < now {
		return now
	}
	return h
}

// Shards implements sim.Shardable: one shard per cluster. Clusters share
// no memory, queues, or bank state; the only cross-cluster effects —
// RemoteCompleted and reply callbacks into the requesting cluster — are
// staged per shard and folded by FinishShards.
func (cs *ClusterSystem) Shards() int { return len(cs.clusters) }

// TickShard implements sim.Shardable: cluster ci's remote dispatch and
// memory work for this phase.
func (cs *ClusterSystem) TickShard(t sim.Slot, ph sim.Phase, ci int) {
	if ph == sim.PhaseIssue {
		cs.dispatch(t, ci)
	}
	cs.clusters[ci].Tick(t, ph)
}

// FinishShards implements sim.ShardFinalizer: fold remote completion
// counts and run reply callbacks in ascending cluster order. Replies run
// here — single-threaded — because they re-enter the requesting
// cluster's state (recording arrival, chaining a next access), which
// would race with that cluster's own shard.
func (cs *ClusterSystem) FinishShards(t sim.Slot, ph sim.Phase) {
	for ci := range cs.stage {
		st := &cs.stage[ci]
		cs.RemoteCompleted += st.remote
		cs.mRemote.Add(st.remote)
		st.remote = 0
		for _, reply := range st.replies {
			reply()
		}
		st.replies = st.replies[:0]
	}
	if ph == sim.PhaseUpdate && cs.drained() {
		// Replies above may have chained new local/remote accesses (and
		// woken us); drained() runs after them, so parking is safe.
		cs.id.Park()
	}
}

// drained reports whether no cluster has queued or in-flight work.
func (cs *ClusterSystem) drained() bool {
	for ci := range cs.queues {
		if !cs.queues[ci].Empty() {
			return false
		}
	}
	for _, cl := range cs.clusters {
		for p := range cl.cur {
			if len(cl.cur[p]) > 0 {
				return false
			}
		}
	}
	return true
}

// dispatch starts the oldest arrived remote request on cluster ci's free
// division if that division's address path is free.
func (cs *ClusterSystem) dispatch(t sim.Slot, ci int) {
	q := &cs.queues[ci]
	if q.Empty() || t < (*q.Peek()).arrive {
		return
	}
	cl := cs.clusters[ci]
	if !cl.CanStart(t, cs.freeDiv) {
		return
	}
	req := q.Pop()
	rec := &servingRec{req: req, start: t}
	cs.serving[ci] = append(cs.serving[ci], rec)
	reply := cs.makeReply(ci, rec)
	switch req.kind {
	case ReadBlock:
		cl.StartRead(t, cs.freeDiv, req.offset, reply)
	case WriteBlock:
		cl.StartWrite(t, cs.freeDiv, req.offset, req.data, reply)
	}
}

// makeReply builds the completion callback for an in-service remote
// request. dispatch installs it when the request starts; LoadState
// installs an identical one when restoring a checkpoint that caught the
// request mid-service.
func (cs *ClusterSystem) makeReply(ci int, rec *servingRec) func(memory.Block) {
	return func(blk memory.Block) { //cfm:alloc-ok remote replies clone the block regardless; cross-cluster traffic is not in the pinned tick loop
		cs.unserve(ci, rec)
		st := &cs.stage[ci]
		st.remote++
		if rec.req.replyTo != nil {
			// The reply crosses the link back to the requester. It is
			// staged (not fired inline) because replyTo re-enters the
			// requesting cluster; FinishShards runs it single-threaded.
			back := cs.linkDelay
			if rec.req.replyDelay >= 0 {
				back = rec.req.replyDelay
			}
			at := cs.clusters[ci].ATSpace().CompletionSlot(rec.start) + sim.Slot(back)
			data := blk.Clone()
			st.replies = append(st.replies, func() { rec.req.replyTo(data, at) })
		}
	}
}

// unserve drops a completed request from a cluster's in-service list.
func (cs *ClusterSystem) unserve(ci int, rec *servingRec) {
	s := cs.serving[ci]
	for i := range s {
		if s[i] == rec {
			cs.serving[ci] = append(s[:i], s[i+1:]...)
			return
		}
	}
}

// PendingRemote returns the number of queued remote requests for a
// cluster (for tests).
func (cs *ClusterSystem) PendingRemote(cluster int) int { return cs.queues[cluster].Len() }
