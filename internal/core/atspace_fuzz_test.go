package core

import (
	"testing"

	"cfm/internal/sim"
)

// FuzzATSpacePartition checks the §3.1.2/§3.1.3 partitioning invariants
// for arbitrary (n, c, t): at every slot the processor→bank address map
// is injective (conflict-free), AddressProcessor is its exact inverse,
// and the per-slot subsets are mutually exclusive and exhaustive — every
// bank is either mid-cycle (−1) or owned by exactly one processor, and
// every processor owns exactly one bank.
func FuzzATSpacePartition(f *testing.F) {
	f.Add(uint8(1), uint8(1), int64(0))
	f.Add(uint8(4), uint8(1), int64(3))
	f.Add(uint8(8), uint8(2), int64(17))
	f.Add(uint8(64), uint8(2), int64(-5))
	f.Add(uint8(16), uint8(4), int64(1<<40))
	f.Fuzz(func(t *testing.T, nb, cb uint8, slot int64) {
		n := int(nb)%64 + 1
		c := int(cb)%4 + 1
		at := NewATSpace(Config{Processors: n, BankCycle: c, WordWidth: 32})
		b := at.Banks()
		if b != c*n {
			t.Fatalf("Banks() = %d, want c·n = %d", b, c*n)
		}
		ts := sim.Slot(slot)

		// Injectivity + inverse: each processor's bank maps back to it.
		owned := make(map[int]int, n)
		for p := 0; p < n; p++ {
			bank := at.AddressBank(ts, p)
			if bank < 0 || bank >= b {
				t.Fatalf("AddressBank(%d,%d) = %d out of [0,%d)", slot, p, bank, b)
			}
			if prev, dup := owned[bank]; dup {
				t.Fatalf("slot %d: processors %d and %d both address bank %d", slot, prev, p, bank)
			}
			owned[bank] = p
			if inv := at.AddressProcessor(ts, bank); inv != p {
				t.Fatalf("slot %d: AddressProcessor(bank %d) = %d, want %d", slot, bank, inv, p)
			}
		}

		// Exhaustiveness: banks not owned this slot must report −1, and
		// exactly n of the b banks are owned.
		for bank := 0; bank < b; bank++ {
			p := at.AddressProcessor(ts, bank)
			if want, ok := owned[bank]; ok {
				if p != want {
					t.Fatalf("slot %d bank %d: inverse %d, want %d", slot, bank, p, want)
				}
			} else if p != -1 {
				t.Fatalf("slot %d bank %d: unowned bank mapped to processor %d", slot, bank, p)
			}
		}
		if len(owned) != n {
			t.Fatalf("slot %d: %d banks owned, want %d", slot, len(owned), n)
		}

		// A block access visits all b banks exactly once, starting from
		// the processor's slot-t0 bank, and completes at t0 + b + c − 2.
		p := int(uint64(slot) % uint64(n))
		seen := make([]bool, b)
		for k := 0; k < b; k++ {
			bank := at.VisitBank(ts, p, k)
			if seen[bank] {
				t.Fatalf("VisitBank revisits bank %d", bank)
			}
			seen[bank] = true
		}
		if last := at.DataSlot(ts, b-1); last != at.CompletionSlot(ts) {
			t.Fatalf("last word slot %d != CompletionSlot %d", last, at.CompletionSlot(ts))
		}
		// The partition period is b slots: slot t and t+b agree everywhere.
		for p := 0; p < n; p++ {
			if at.AddressBank(ts, p) != at.AddressBank(ts+sim.Slot(b), p) {
				t.Fatalf("partition not periodic with period b=%d", b)
			}
		}
	})
}
