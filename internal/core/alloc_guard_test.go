package core

import (
	"testing"

	"cfm/internal/memory"
	"cfm/internal/sim"
)

// TestBankTickLoopAllocFree guards the zero-allocation steady state of
// the conflict-free memory's tick loop: after warm-up, every access
// record and result buffer comes from the per-processor free lists, so
// running slots allocates nothing. A regression here silently erodes the
// throughput the bench suite (BenchmarkEngineSerial) is built on.
func TestBankTickLoopAllocFree(t *testing.T) {
	cfg := Config{Processors: 8, BankCycle: 2, WordWidth: 16}
	m := NewCFMemory(cfg, nil)
	clk := sim.NewClock()
	blk := make(memory.Block, cfg.Banks())
	clk.Register(sim.TickerFunc(func(tt sim.Slot, ph sim.Phase) {
		if ph != sim.PhaseIssue {
			return
		}
		for p := 0; p < cfg.Processors; p++ {
			if m.CanStart(tt, p) {
				if p%2 == 0 {
					m.StartWrite(tt, p, p, blk, nil)
				} else {
					m.StartRead(tt, p, (p+1)%cfg.Processors, nil)
				}
			}
		}
	}))
	clk.Register(m)
	clk.Run(200) // warm-up: size the free lists
	if avg := testing.AllocsPerRun(50, func() { clk.Run(20) }); avg != 0 {
		t.Fatalf("bank tick loop allocates %v times per 20 slots, want 0", avg)
	}
	if m.Completed == 0 {
		t.Fatal("no accesses completed: guard is vacuous")
	}
}
