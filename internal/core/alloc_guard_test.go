package core

import (
	"testing"

	"cfm/internal/memory"
	"cfm/internal/sim"
)

// TestBankTickLoopAllocFree guards the zero-allocation steady state of
// the conflict-free memory's tick loop: after warm-up, every access
// record and result buffer comes from the per-processor free lists, so
// running slots allocates nothing. A regression here silently erodes the
// throughput the bench suite (BenchmarkEngineSerial) is built on.
func TestBankTickLoopAllocFree(t *testing.T) {
	cfg := Config{Processors: 8, BankCycle: 2, WordWidth: 16}
	m := NewCFMemory(cfg, nil)
	clk := sim.NewClock()
	blk := make(memory.Block, cfg.Banks())
	clk.Register(sim.TickerFunc(func(tt sim.Slot, ph sim.Phase) {
		if ph != sim.PhaseIssue {
			return
		}
		for p := 0; p < cfg.Processors; p++ {
			if m.CanStart(tt, p) {
				if p%2 == 0 {
					m.StartWrite(tt, p, p, blk, nil)
				} else {
					m.StartRead(tt, p, (p+1)%cfg.Processors, nil)
				}
			}
		}
	}))
	clk.Register(m)
	clk.Run(200) // warm-up: size the free lists
	if avg := testing.AllocsPerRun(50, func() { clk.Run(20) }); avg != 0 {
		t.Fatalf("bank tick loop allocates %v times per 20 slots, want 0", avg)
	}
	if m.Completed == 0 {
		t.Fatal("no accesses completed: guard is vacuous")
	}
}

// TestPartialDenseTickAllocFree guards the zero-allocation steady state
// of the dense serial sweep: with the open-loop arrival rate below the
// service rate the backlog rings reach a stable depth, after which every
// tick is index arithmetic over the flat per-processor arrays. (The
// saturated bench shapes DO allocate — their backlogs grow without
// bound by design — so the guard runs an underloaded system.)
func TestPartialDenseTickAllocFree(t *testing.T) {
	p := NewPartial(PartialConfig{
		Processors: 64, Modules: 8, BlockWords: 16, BankCycle: 2,
		Locality: 0.9, AccessRate: 0.02, RetryMean: 4, Seed: 9,
	})
	clk := sim.NewClock()
	clk.Register(p)
	clk.Run(30000) // warm-up: every backlog ring at steady-state depth
	if avg := testing.AllocsPerRun(20, func() { clk.Run(200) }); avg != 0 {
		t.Fatalf("dense tick sweep allocates %v times per 200 slots, want 0", avg)
	}
	if p.Completed == 0 {
		t.Fatal("no accesses completed: guard is vacuous")
	}
}
