package core

import (
	"fmt"
	"math/bits"

	"cfm/internal/memory"
	"cfm/internal/sim"
)

// Topology describes the inter-cluster interconnection of a
// multiple-cluster CFM (§3.3: "the multiple-cluster connection scheme
// can be used to extend the CFM architecture for constructing
// multiprocessors with various scales, connectivity, and topologies.
// These include hypercube, 2-D mesh, etc.").
type Topology interface {
	// Clusters returns the number of clusters connected.
	Clusters() int
	// Hops returns the routing distance between two clusters (0 for
	// a == b).
	Hops(a, b int) int
	// String names the topology.
	String() string
}

// FullyConnected links every cluster pair directly.
type FullyConnected struct{ N int }

// Clusters implements Topology.
func (f FullyConnected) Clusters() int { return f.N }

// Hops implements Topology.
func (f FullyConnected) Hops(a, b int) int {
	checkClusterPair(f, a, b)
	if a == b {
		return 0
	}
	return 1
}

// String implements Topology.
func (f FullyConnected) String() string { return fmt.Sprintf("fully-connected(%d)", f.N) }

// Ring links clusters in a cycle.
type Ring struct{ N int }

// Clusters implements Topology.
func (r Ring) Clusters() int { return r.N }

// Hops implements Topology.
func (r Ring) Hops(a, b int) int {
	checkClusterPair(r, a, b)
	d := a - b
	if d < 0 {
		d = -d
	}
	if r.N-d < d {
		d = r.N - d
	}
	return d
}

// String implements Topology.
func (r Ring) String() string { return fmt.Sprintf("ring(%d)", r.N) }

// Mesh2D arranges clusters in a Rows × Cols grid with Manhattan routing.
type Mesh2D struct{ Rows, Cols int }

// Clusters implements Topology.
func (m Mesh2D) Clusters() int { return m.Rows * m.Cols }

// Hops implements Topology.
func (m Mesh2D) Hops(a, b int) int {
	checkClusterPair(m, a, b)
	ar, ac := a/m.Cols, a%m.Cols
	br, bc := b/m.Cols, b%m.Cols
	return abs(ar-br) + abs(ac-bc)
}

// String implements Topology.
func (m Mesh2D) String() string { return fmt.Sprintf("mesh(%dx%d)", m.Rows, m.Cols) }

// Hypercube links 2^Dim clusters along dimension edges.
type Hypercube struct{ Dim int }

// Clusters implements Topology.
func (h Hypercube) Clusters() int { return 1 << h.Dim }

// Hops implements Topology.
func (h Hypercube) Hops(a, b int) int {
	checkClusterPair(h, a, b)
	return bits.OnesCount(uint(a ^ b))
}

// String implements Topology.
func (h Hypercube) String() string { return fmt.Sprintf("hypercube(%d)", h.Dim) }

func checkClusterPair(t Topology, a, b int) {
	if a < 0 || a >= t.Clusters() || b < 0 || b >= t.Clusters() {
		panic(fmt.Sprintf("core: clusters %d,%d out of range [0,%d)", a, b, t.Clusters()))
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Diameter returns the topology's maximum hop count.
func Diameter(t Topology) int {
	d := 0
	for a := 0; a < t.Clusters(); a++ {
		for b := 0; b < t.Clusters(); b++ {
			if h := t.Hops(a, b); h > d {
				d = h
			}
		}
	}
	return d
}

// MeanHops returns the average hop count over distinct cluster pairs.
func MeanHops(t Topology) float64 {
	n := t.Clusters()
	if n < 2 {
		return 0
	}
	sum, cnt := 0, 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				sum += t.Hops(a, b)
				cnt++
			}
		}
	}
	return float64(sum) / float64(cnt)
}

// SetTopology installs an inter-cluster topology on a ClusterSystem: the
// one-way delay of a remote access from cluster a to cluster b becomes
// Hops(a,b) × perHopDelay instead of the flat construction-time delay.
// The topology's cluster count must match the system's.
func (cs *ClusterSystem) SetTopology(t Topology, perHopDelay int) {
	if t.Clusters() != len(cs.clusters) {
		panic(fmt.Sprintf("core: topology has %d clusters, system has %d", t.Clusters(), len(cs.clusters)))
	}
	if perHopDelay < 0 {
		panic(fmt.Sprintf("core: negative per-hop delay %d", perHopDelay))
	}
	cs.topo = t
	cs.perHop = perHopDelay
}

// linkDelayBetween returns the one-way request delay between clusters.
func (cs *ClusterSystem) linkDelayBetween(from, to int) int {
	if cs.topo == nil {
		return cs.linkDelay
	}
	return cs.topo.Hops(from, to) * cs.perHop
}

// RemoteReadFrom issues a read from a processor in fromCluster against
// toCluster's memory, paying the topology's routing distance both ways.
func (cs *ClusterSystem) RemoteReadFrom(t sim.Slot, fromCluster, toCluster, offset int, done func(memory.Block, sim.Slot)) {
	d := cs.linkDelayBetween(fromCluster, toCluster)
	cs.id.Wake()
	cs.queues[toCluster].Push(&remoteReq{
		kind: ReadBlock, offset: offset,
		arrive: t + sim.Slot(d), replyTo: done, replyDelay: d,
	})
}

// RemoteWriteFrom issues a write from fromCluster against toCluster.
func (cs *ClusterSystem) RemoteWriteFrom(t sim.Slot, fromCluster, toCluster, offset int, data memory.Block, done func(memory.Block, sim.Slot)) {
	d := cs.linkDelayBetween(fromCluster, toCluster)
	cs.id.Wake()
	cs.queues[toCluster].Push(&remoteReq{
		kind: WriteBlock, offset: offset, data: data.Clone(),
		arrive: t + sim.Slot(d), replyTo: done, replyDelay: d,
	})
}
