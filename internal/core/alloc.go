package core

import (
	"fmt"

	"cfm/internal/sim"
)

// This file implements the processor allocation study named as future
// work in §7.2: "to design efficient processor allocation schemes that
// will reduce memory, network, or network controller contention" in
// partially conflict-free systems.
//
// A job is a process with a home memory module (where its data lives).
// Placing the job on a processor of the home module's own cluster makes
// its λ-fraction of local accesses conflict-free; placing it elsewhere
// turns even its "local" accesses into remote ones that contend for
// AT-space ports with same-contention-set processors.

// Job is a schedulable process with a data-affinity module.
type Job struct {
	Home int // module holding the job's principal data
}

// Placement maps each processor to the home module of the job running on
// it, or −1 for an idle processor.
type Placement []int

// Jobs returns the number of placed (non-idle) processors.
func (pl Placement) Jobs() int {
	n := 0
	for _, h := range pl {
		if h >= 0 {
			n++
		}
	}
	return n
}

// validateJobs checks a job set against a configuration.
func validateJobs(cfg PartialConfig, jobs []Job) error {
	if len(jobs) > cfg.Processors {
		return fmt.Errorf("core: %d jobs exceed %d processors", len(jobs), cfg.Processors)
	}
	for i, j := range jobs {
		if j.Home < 0 || j.Home >= cfg.Modules {
			return fmt.Errorf("core: job %d home module %d out of range [0,%d)", i, j.Home, cfg.Modules)
		}
	}
	return nil
}

// AllocateAffine places each job on a free processor in its home
// module's cluster when one exists, overflowing to the first free
// processor otherwise — the locality-preserving strategy.
func AllocateAffine(cfg PartialConfig, jobs []Job) (Placement, error) {
	if err := validateJobs(cfg, jobs); err != nil {
		return nil, err
	}
	pl := newPlacement(cfg.Processors)
	cs := cfg.ClusterSize()
	var overflow []Job
	for _, j := range jobs {
		placed := false
		for p := j.Home * cs; p < (j.Home+1)*cs; p++ {
			if pl[p] < 0 {
				pl[p] = j.Home
				placed = true
				break
			}
		}
		if !placed {
			overflow = append(overflow, j)
		}
	}
	for _, j := range overflow {
		for p := range pl {
			if pl[p] < 0 {
				pl[p] = j.Home
				break
			}
		}
	}
	return pl, nil
}

// AllocateScatter places jobs round-robin over processor indices with no
// regard to data affinity — the locality-destroying strategy.
func AllocateScatter(cfg PartialConfig, jobs []Job) (Placement, error) {
	if err := validateJobs(cfg, jobs); err != nil {
		return nil, err
	}
	pl := newPlacement(cfg.Processors)
	for i, j := range jobs {
		pl[i] = j.Home
	}
	return pl, nil
}

// AllocateRandom places jobs on uniformly random free processors.
func AllocateRandom(cfg PartialConfig, jobs []Job, rng *sim.RNG) (Placement, error) {
	if err := validateJobs(cfg, jobs); err != nil {
		return nil, err
	}
	pl := newPlacement(cfg.Processors)
	free := make([]int, cfg.Processors)
	for i := range free {
		free[i] = i
	}
	for _, j := range jobs {
		k := rng.Intn(len(free))
		pl[free[k]] = j.Home
		free = append(free[:k], free[k+1:]...)
	}
	return pl, nil
}

func newPlacement(n int) Placement {
	pl := make(Placement, n)
	for i := range pl {
		pl[i] = -1
	}
	return pl
}

// LocalityOf returns the fraction of jobs whose processor sits in the
// cluster of its home module — the effective locality a placement buys.
func (pl Placement) LocalityOf(cfg PartialConfig) float64 {
	placed, local := 0, 0
	for p, h := range pl {
		if h < 0 {
			continue
		}
		placed++
		if cfg.Cluster(p) == h {
			local++
		}
	}
	if placed == 0 {
		return 0
	}
	return float64(local) / float64(placed)
}
