package core

import (
	"testing"

	"cfm/internal/sim"
)

func sharedCfg(sharing int, rate float64) SharedConfig {
	return SharedConfig{
		Divisions: 8, Sharing: sharing, BlockWords: 16, BankCycle: 2,
		AccessRate: rate, RetryMean: 4, Seed: 1,
	}
}

func runShared(t *testing.T, cfg SharedConfig, slots int64) *Shared {
	t.Helper()
	s := NewShared(cfg)
	clk := sim.NewClock()
	clk.Register(s)
	clk.Run(slots)
	return s
}

func TestSharedConfigValidate(t *testing.T) {
	if err := sharedCfg(2, 0.02).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []SharedConfig{
		{Divisions: 0, Sharing: 1, BlockWords: 1, BankCycle: 1, RetryMean: 1},
		{Divisions: 1, Sharing: 0, BlockWords: 1, BankCycle: 1, RetryMean: 1},
		{Divisions: 1, Sharing: 1, BlockWords: 0, BankCycle: 1, RetryMean: 1},
		{Divisions: 1, Sharing: 1, BlockWords: 1, BankCycle: 1, AccessRate: 2, RetryMean: 1},
		{Divisions: 1, Sharing: 1, BlockWords: 1, BankCycle: 1, RetryMean: 0},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if got := sharedCfg(3, 0).Processors(); got != 24 {
		t.Fatalf("Processors = %d, want 24", got)
	}
	if got := sharedCfg(3, 0).Division(17); got != 1 {
		t.Fatalf("Division(17) = %d, want 1", got)
	}
}

// TestSharedOneIsConflictFree: sharing = 1 is the plain CFM — zero
// retries, efficiency 1.
func TestSharedOneIsConflictFree(t *testing.T) {
	s := runShared(t, sharedCfg(1, 0.05), 200000)
	if s.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if s.Retries != 0 || s.Efficiency() != 1 {
		t.Fatalf("sharing=1: %d retries, E=%v", s.Retries, s.Efficiency())
	}
}

// TestSharedConflictsAppear: sharing > 1 introduces the conflicts §7.2
// accepts as the price of utilization.
func TestSharedConflictsAppear(t *testing.T) {
	s := runShared(t, sharedCfg(4, 0.05), 200000)
	if s.Retries == 0 {
		t.Fatal("sharing=4 at r=0.05 produced no conflicts")
	}
	if e := s.Efficiency(); e >= 1 {
		t.Fatalf("efficiency %v with conflicts", e)
	}
}

// TestSharedUtilizationRises: at the same per-processor rate, sharing
// raises hardware utilization and total throughput — the §7.2 claim.
func TestSharedUtilizationRises(t *testing.T) {
	var prevUtil, prevTput float64
	for _, sharing := range []int{1, 2, 4} {
		s := runShared(t, sharedCfg(sharing, 0.02), 200000)
		if u := s.Utilization(); u <= prevUtil {
			t.Fatalf("sharing=%d utilization %v not above %v", sharing, u, prevUtil)
		} else {
			prevUtil = u
		}
		if tp := s.Throughput(); tp <= prevTput {
			t.Fatalf("sharing=%d throughput %v not above %v", sharing, tp, prevTput)
		} else {
			prevTput = tp
		}
	}
}

// TestSharedEfficiencyFalls: the flip side — per-access efficiency
// degrades as sharing grows.
func TestSharedEfficiencyFalls(t *testing.T) {
	var prev = 1.1
	for _, sharing := range []int{1, 2, 4} {
		s := runShared(t, sharedCfg(sharing, 0.03), 200000)
		if e := s.Efficiency(); e >= prev {
			t.Fatalf("sharing=%d efficiency %v not below %v", sharing, e, prev)
		} else {
			prev = e
		}
	}
}

func TestSharedDeterministic(t *testing.T) {
	a := runShared(t, sharedCfg(2, 0.03), 50000)
	b := runShared(t, sharedCfg(2, 0.03), 50000)
	if a.Completed != b.Completed || a.Retries != b.Retries {
		t.Fatal("same seed differed")
	}
}

func TestSharedZeroRate(t *testing.T) {
	s := runShared(t, sharedCfg(2, 0), 10000)
	if s.Completed != 0 || s.Utilization() != 0 || s.Throughput() != 0 {
		t.Fatal("traffic at rate 0")
	}
	if s.Efficiency() != 1 {
		t.Fatal("vacuous efficiency wrong")
	}
}

func TestSharedPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewShared(SharedConfig{})
}

// TestSharedOnlySameDivisionConflicts: processors in different divisions
// never conflict regardless of sharing (the CFM guarantee holds across
// divisions).
func TestSharedOnlySameDivisionConflicts(t *testing.T) {
	// One processor per division issuing heavily: no conflicts even at
	// extreme rate, because conflicts require same-division sharing.
	cfg := SharedConfig{
		Divisions: 8, Sharing: 1, BlockWords: 16, BankCycle: 2,
		AccessRate: 0.5, RetryMean: 2, Seed: 5,
	}
	s := runShared(t, cfg, 100000)
	if s.Retries != 0 {
		t.Fatalf("cross-division conflicts: %d", s.Retries)
	}
}
