package core

import "fmt"

// This file implements the building-block construction named in §7.2:
// "It may be helpful to implement a 'building block' for constructing
// large scale CFM architectures. A building block can be a board composed
// of multiple processors/ports and a conflict-free memory module with a
// number of memory banks. It would be more convenient if large scale
// multiprocessors could be implemented by integrating smaller building
// blocks such as four-bank CFM boards or eight-bank CFM boards."

// BuildingBlock is one CFM board: Ports processor/port connections and
// Banks memory banks of the given word width and bank cycle.
type BuildingBlock struct {
	Ports     int // processor/port connections on the board
	Banks     int // memory banks on the board
	WordWidth int // bits per word
	BankCycle int // c, CPU cycles per bank access
}

// Validate reports a descriptive error for an unusable board.
func (b BuildingBlock) Validate() error {
	switch {
	case b.Ports < 1:
		return fmt.Errorf("core: board needs >=1 port, got %d", b.Ports)
	case b.Banks < 1:
		return fmt.Errorf("core: board needs >=1 bank, got %d", b.Banks)
	case b.WordWidth < 1:
		return fmt.Errorf("core: board word width %d < 1", b.WordWidth)
	case b.BankCycle < 1:
		return fmt.Errorf("core: board bank cycle %d < 1", b.BankCycle)
	case b.Banks != b.BankCycle*b.Ports:
		return fmt.Errorf("core: board banks %d must equal cycle %d × ports %d for conflict-free operation",
			b.Banks, b.BankCycle, b.Ports)
	}
	return nil
}

// FourBankBoard returns the §7.2 example four-bank board (c = 1).
func FourBankBoard(wordWidth int) BuildingBlock {
	return BuildingBlock{Ports: 4, Banks: 4, WordWidth: wordWidth, BankCycle: 1}
}

// EightBankBoard returns the §7.2 example eight-bank board (c = 2:
// eight banks serving four ports).
func EightBankBoard(wordWidth int) BuildingBlock {
	return BuildingBlock{Ports: 4, Banks: 8, WordWidth: wordWidth, BankCycle: 2}
}

// Integrate composes `count` identical boards into one larger CFM
// configuration: the banks concatenate into a wider block (the boards'
// words at the same offset form one cache line) and the ports aggregate
// into the processor count, preserving b = c·n. Boards must be identical
// (same clock, same word width) — the integration rule that makes the
// composition conflict-free.
func Integrate(board BuildingBlock, count int) (Config, error) {
	if err := board.Validate(); err != nil {
		return Config{}, err
	}
	if count < 1 {
		return Config{}, fmt.Errorf("core: need >=1 board, got %d", count)
	}
	cfg := Config{
		Processors: board.Ports * count,
		BankCycle:  board.BankCycle,
		WordWidth:  board.WordWidth,
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	// Sanity: the composed machine's banks must be exactly the boards'.
	if cfg.Banks() != board.Banks*count {
		return Config{}, fmt.Errorf("core: composition broke b = c·n (%d banks vs %d boards × %d)",
			cfg.Banks(), count, board.Banks)
	}
	return cfg, nil
}

// IntegrateModular composes boards into a PARTIALLY conflict-free system
// instead: each board becomes one conflict-free memory module, its ports
// one contention set column, keeping the block size at the board's own
// block size instead of growing with the machine (the Table 3.5 middle
// rows built from boards).
func IntegrateModular(board BuildingBlock, count int, accessRate, locality float64, retryMean int, seed uint64) (PartialConfig, error) {
	if err := board.Validate(); err != nil {
		return PartialConfig{}, err
	}
	if count < 1 {
		return PartialConfig{}, fmt.Errorf("core: need >=1 board, got %d", count)
	}
	cfg := PartialConfig{
		Processors: board.Ports * count,
		Modules:    count,
		BlockWords: board.Banks,
		BankCycle:  board.BankCycle,
		Locality:   locality,
		AccessRate: accessRate,
		RetryMean:  retryMean,
		Seed:       seed,
	}
	if count == 1 {
		// A single board is the fully conflict-free machine; the partial
		// model requires m >= 1 and this degenerates correctly.
		return cfg, cfg.Validate()
	}
	return cfg, cfg.Validate()
}
