// Package core implements the Conflict-Free Memory architecture, the
// primary contribution of the dissertation (Chapter 3).
//
// A conventional interleaved memory maps an address a·b (offset a, bank
// b) to data. The CFM instead maps the address-time space AT to data: a
// block access supplies only the offset, and the bank touched at each CPU
// cycle is selected by the time slot. With the mutually exclusive
// AT-space partitioning
//
//	bank(t, p) = (t + c·p) mod b        (b = c·n banks, bank cycle c)
//
// each processor owns a disjoint subset of the AT-space, so block
// accesses from different processors can never collide in a bank or in
// the synchronous interconnection network — memory conflicts, network
// contention, and the hot-spot/tree-saturation problem are eliminated by
// construction rather than mitigated.
//
// A block access may start at any time slot (no alignment stall, unlike
// the Monarch or OMP): the access simply begins at whatever bank the
// current slot maps to and wraps around all b banks, taking
// β = b + c − 1 CPU cycles in a pipelined fashion.
package core

import (
	"fmt"
)

// Config captures the CFM design parameters of Table 3.2 and the derived
// quantities used throughout the dissertation.
type Config struct {
	Processors int // n
	BankCycle  int // c, memory bank cycle in CPU cycles
	WordWidth  int // w, bits per memory word
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Processors < 1:
		return fmt.Errorf("core: need >=1 processor, got %d", c.Processors)
	case c.BankCycle < 1:
		return fmt.Errorf("core: bank cycle %d < 1", c.BankCycle)
	case c.WordWidth < 1:
		return fmt.Errorf("core: word width %d < 1", c.WordWidth)
	}
	return nil
}

// Banks returns b = c·n, the bank count required for conflict-free
// operation (§3.1.3: the number of memory banks must be c times the
// number of processors).
func (c Config) Banks() int { return c.BankCycle * c.Processors }

// BlockWords returns the words per block, one per bank.
func (c Config) BlockWords() int { return c.Banks() }

// BlockBits returns l = b·w, the block (and cache line) size in bits.
func (c Config) BlockBits() int { return c.Banks() * c.WordWidth }

// BlockTime returns β = b + c − 1, the CPU cycles one block access takes.
func (c Config) BlockTime() int { return c.Banks() + c.BankCycle - 1 }

// Period returns the length of one AT-space time period in slots (= b).
func (c Config) Period() int { return c.Banks() }

// String summarizes the configuration.
func (c Config) String() string {
	return fmt.Sprintf("CFM{n=%d c=%d w=%d b=%d l=%d β=%d}",
		c.Processors, c.BankCycle, c.WordWidth, c.Banks(), c.BlockBits(), c.BlockTime())
}

// ConfigForBlock returns the CFM configuration that implements a block of
// blockBits with the given bank count and bank cycle: w = l/b, n = b/c.
// It errors if the divisions are not exact or the result is invalid —
// this is the generator behind the trade-off study of Table 3.3.
func ConfigForBlock(blockBits, banks, bankCycle int) (Config, error) {
	if banks < 1 || bankCycle < 1 {
		return Config{}, fmt.Errorf("core: banks=%d cycle=%d invalid", banks, bankCycle)
	}
	if blockBits%banks != 0 {
		return Config{}, fmt.Errorf("core: block of %d bits not divisible across %d banks", blockBits, banks)
	}
	if banks%bankCycle != 0 {
		return Config{}, fmt.Errorf("core: %d banks not divisible by bank cycle %d", banks, bankCycle)
	}
	cfg := Config{
		Processors: banks / bankCycle,
		BankCycle:  bankCycle,
		WordWidth:  blockBits / banks,
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// TradeoffRow is one row of Table 3.3: a feasible CFM configuration for a
// fixed block size and bank cycle.
type TradeoffRow struct {
	Banks      int // b
	WordWidth  int // w
	Latency    int // β = b + c − 1 ("memory latency" column)
	Processors int // n = b/c
}

// Tradeoff enumerates the feasible configurations for a block of
// blockBits and bank cycle c, from the widest bank count down to the
// narrowest that still supports at least one processor — Table 3.3 is
// Tradeoff(256, 2).
func Tradeoff(blockBits, bankCycle int) []TradeoffRow {
	var rows []TradeoffRow
	for banks := blockBits; banks >= 1; banks /= 2 {
		cfg, err := ConfigForBlock(blockBits, banks, bankCycle)
		if err != nil {
			continue
		}
		rows = append(rows, TradeoffRow{
			Banks:      cfg.Banks(),
			WordWidth:  cfg.WordWidth,
			Latency:    cfg.BlockTime(),
			Processors: cfg.Processors,
		})
	}
	return rows
}
