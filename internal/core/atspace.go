package core

import (
	"fmt"

	"cfm/internal/sim"
)

// ATSpace is the address-time space of §3.1.1 with the mutually exclusive
// partitioning of §3.1.2 generalized to bank cycle c (§3.1.3): at time
// slot t, processor p's address path is connected to bank
//
//	(t + c·p) mod b,  b = c·n.
//
// The data path lags the address path by one slot (Table 3.1: "the data
// path connections are similar but shifted by one time slot"), and the
// data word read from the bank addressed at slot t becomes available at
// slot t + c − 1 (Fig. 3.6: with c = 2 a read issued at slot 0 receives
// the words of banks 0 and 1 at slots 1 and 2).
type ATSpace struct {
	n int // processors
	c int // bank cycle
	b int // banks = c·n
}

// NewATSpace builds the partitioning for a configuration.
func NewATSpace(cfg Config) *ATSpace {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &ATSpace{n: cfg.Processors, c: cfg.BankCycle, b: cfg.Banks()}
}

// Processors returns n.
func (a *ATSpace) Processors() int { return a.n }

// Banks returns b.
func (a *ATSpace) Banks() int { return a.b }

// Cycle returns c.
func (a *ATSpace) Cycle() int { return a.c }

// mod reduces a slot into [0, b).
func (a *ATSpace) mod(t sim.Slot) int {
	v := int(t % sim.Slot(a.b))
	if v < 0 {
		v += a.b
	}
	return v
}

// AddressBank returns the bank whose memory address register is loaded
// from processor p's address path at slot t.
func (a *ATSpace) AddressBank(t sim.Slot, p int) int {
	if p < 0 || p >= a.n {
		panic(fmt.Sprintf("core: processor %d out of range [0,%d)", p, a.n))
	}
	return (a.mod(t) + a.c*p) % a.b
}

// AddressProcessor inverts AddressBank: the processor whose address path
// reaches bank at slot t, or −1 when the bank is connected to no
// processor this slot (possible only when c > 1: the bank is mid-cycle).
func (a *ATSpace) AddressProcessor(t sim.Slot, bank int) int {
	if bank < 0 || bank >= a.b {
		panic(fmt.Sprintf("core: bank %d out of range [0,%d)", bank, a.b))
	}
	d := bank - a.mod(t)
	if d < 0 {
		d += a.b
	}
	if d%a.c != 0 {
		return -1
	}
	return d / a.c
}

// VisitBank returns the k-th bank visited by a block access that
// processor p starts at slot t0 (k in [0, b)): the access begins at
// whatever bank slot t0 maps to and wraps around all b banks.
func (a *ATSpace) VisitBank(t0 sim.Slot, p, k int) int {
	if k < 0 || k >= a.b {
		panic(fmt.Sprintf("core: visit index %d out of range [0,%d)", k, a.b))
	}
	return (a.AddressBank(t0, p) + k) % a.b
}

// DataSlot returns the slot at which word k of a block access started at
// t0 is transferred: the bank addressed at t0+k delivers (or absorbs) its
// word c−1 slots later.
func (a *ATSpace) DataSlot(t0 sim.Slot, k int) sim.Slot {
	return t0 + sim.Slot(k+a.c-1)
}

// CompletionSlot returns the slot at which the last word of a block
// access started at t0 transfers; the access occupies
// β = b + c − 1 slots, t0 .. CompletionSlot inclusive.
func (a *ATSpace) CompletionSlot(t0 sim.Slot) sim.Slot {
	return t0 + sim.Slot(a.b+a.c-2)
}

// ConnectionTable renders Table 3.1: for each of the b slots of one time
// period, the processor connected to each bank's address path (−1 for
// none).
func (a *ATSpace) ConnectionTable() [][]int {
	rows := make([][]int, a.b)
	for t := range rows {
		row := make([]int, a.b)
		for bank := range row {
			row[bank] = a.AddressProcessor(sim.Slot(t), bank)
		}
		rows[t] = row
	}
	return rows
}
