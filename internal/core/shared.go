package core

import (
	"fmt"

	"cfm/internal/sim"
)

// This file implements the slot-sharing extension proposed as future
// work in §7.2: "One way to utilize this valuable resource is to assign
// a time slot to more than one processor. Although processors sharing
// the same time slot can conflict with each other when accessing shared
// memory concurrently, the memory and network utilizations are further
// improved" — trading the strict conflict-freedom guarantee for higher
// processor counts on the same memory hardware.

// SharedConfig parameterizes a slot-shared CFM: Divisions AT-space
// divisions (the hardware is a CFM for Divisions processors) with
// Sharing processors assigned to each division.
type SharedConfig struct {
	Divisions  int     // AT-space divisions (= conflict-free capacity)
	Sharing    int     // processors per division (1 = plain CFM)
	BlockWords int     // words per block (banks of the underlying CFM)
	BankCycle  int     // c
	AccessRate float64 // r per processor per cycle
	RetryMean  int
	Seed       uint64
}

// Validate reports a descriptive error for an unusable configuration.
func (c SharedConfig) Validate() error {
	switch {
	case c.Divisions < 1:
		return fmt.Errorf("core: need >=1 division, got %d", c.Divisions)
	case c.Sharing < 1:
		return fmt.Errorf("core: sharing %d < 1", c.Sharing)
	case c.BlockWords < 1 || c.BankCycle < 1:
		return fmt.Errorf("core: block %d / cycle %d invalid", c.BlockWords, c.BankCycle)
	case c.AccessRate < 0 || c.AccessRate > 1:
		return fmt.Errorf("core: rate %v out of [0,1]", c.AccessRate)
	case c.RetryMean < 1:
		return fmt.Errorf("core: retry mean %d < 1", c.RetryMean)
	}
	return nil
}

// Processors returns the total processor count, Divisions × Sharing.
func (c SharedConfig) Processors() int { return c.Divisions * c.Sharing }

// BlockTime returns β.
func (c SharedConfig) BlockTime() int { return c.BlockWords + c.BankCycle - 1 }

// Division returns the AT-space division processor p is assigned to.
func (c SharedConfig) Division(p int) int { return p % c.Divisions }

// Shared simulates the slot-shared CFM: each division is a port held for
// β slots per block access; processors sharing a division conflict with
// each other (and only with each other). It implements sim.Ticker.
//
// Think times and retry delays are drawn when the triggering event fires,
// never per slot, so skip-ahead jumps leave the stream intact.
//
//cfm:rng=event
type Shared struct {
	cfg SharedConfig
	rng *sim.RNG

	ports []sim.Slot // per-division busy-until

	state       []procState
	wakeAt      []sim.Slot
	doneAt      []sim.Slot
	issuedAt    []sim.Slot
	nextArrival []sim.Slot
	backlog     []sim.Queue[sim.Slot]

	// Measurements.
	Completed    int64
	Retries      int64
	TotalLatency int64
	busySlots    int64 // Σ port busy time granted
	horizon      sim.Slot
}

// NewShared builds the simulator; it panics on invalid configuration.
func NewShared(cfg SharedConfig) *Shared {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Processors()
	s := &Shared{
		cfg:         cfg,
		rng:         sim.NewRNG(cfg.Seed),
		ports:       make([]sim.Slot, cfg.Divisions),
		state:       make([]procState, n),
		wakeAt:      make([]sim.Slot, n),
		doneAt:      make([]sim.Slot, n),
		issuedAt:    make([]sim.Slot, n),
		nextArrival: make([]sim.Slot, n),
		backlog:     make([]sim.Queue[sim.Slot], n),
	}
	for i := range s.nextArrival {
		s.nextArrival[i] = sim.Slot(s.thinkTime())
	}
	return s
}

func (s *Shared) thinkTime() int {
	r := s.cfg.AccessRate
	if r <= 0 {
		return 1 << 30
	}
	t := 1
	for !s.rng.Bernoulli(r) {
		t++
		if t > 1<<20 {
			break
		}
	}
	return t
}

func (s *Shared) retryDelay() int {
	g := s.cfg.RetryMean
	if g == 1 {
		return 1
	}
	return 1 + s.rng.Intn(2*g-1)
}

// PhaseMask implements sim.PhaseMasker: all the work is in PhaseIssue.
func (s *Shared) PhaseMask() sim.PhaseMask { return sim.MaskOf(sim.PhaseIssue) }

// Tick implements sim.Ticker.
func (s *Shared) Tick(t sim.Slot, ph sim.Phase) {
	if ph != sim.PhaseIssue {
		return
	}
	s.horizon = t + 1
	for i := range s.state {
		for t >= s.nextArrival[i] {
			s.backlog[i].Push(s.nextArrival[i])
			s.nextArrival[i] += sim.Slot(s.thinkTime())
		}
		switch s.state[i] {
		case procInFlight:
			if t >= s.doneAt[i] {
				s.Completed++
				s.TotalLatency += int64(s.doneAt[i] - s.issuedAt[i])
				s.state[i] = procIdle
			}
		case procWaiting:
			if t >= s.wakeAt[i] {
				s.attempt(t, i)
			}
		}
		if s.state[i] == procIdle && !s.backlog[i].Empty() {
			s.backlog[i].Pop()
			s.issuedAt[i] = t
			s.attempt(t, i)
		}
	}
}

func (s *Shared) attempt(t sim.Slot, proc int) {
	div := s.cfg.Division(proc)
	if t < s.ports[div] {
		// Slot-sharing conflict: another processor of the same division
		// is mid-access.
		s.Retries++
		s.state[proc] = procWaiting
		s.wakeAt[proc] = t + sim.Slot(s.retryDelay())
		return
	}
	s.ports[div] = t + sim.Slot(s.cfg.BlockTime())
	s.busySlots += int64(s.cfg.BlockTime())
	s.state[proc] = procInFlight
	s.doneAt[proc] = t + sim.Slot(s.cfg.BlockTime())
}

// Efficiency returns β over the mean access time.
func (s *Shared) Efficiency() float64 {
	if s.Completed == 0 {
		return 1
	}
	return float64(s.cfg.BlockTime()) / (float64(s.TotalLatency) / float64(s.Completed))
}

// Utilization returns the fraction of division-slots actually serving
// accesses — the quantity §7.2 proposes to improve by sharing.
func (s *Shared) Utilization() float64 {
	if s.horizon == 0 {
		return 0
	}
	return float64(s.busySlots) / float64(int64(s.horizon)*int64(s.cfg.Divisions))
}

// Throughput returns completed block accesses per slot.
func (s *Shared) Throughput() float64 {
	if s.horizon == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.horizon)
}
