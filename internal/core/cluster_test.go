package core

import (
	"testing"

	"cfm/internal/memory"
	"cfm/internal/sim"
)

func newClusterSystem(t *testing.T) (*ClusterSystem, *sim.Clock) {
	t.Helper()
	// Fig. 3.12: clusters with 3 processors and 4 AT-space divisions; the
	// fourth division serves remote requests. Bank cycle 1, 4 banks.
	cfg := Config{Processors: 4, BankCycle: 1, WordWidth: 64}
	cs := NewClusterSystem(cfg, 2, 3, 5)
	clk := sim.NewClock()
	clk.Register(cs)
	return cs, clk
}

func TestClusterLocalAccess(t *testing.T) {
	cs, clk := newClusterSystem(t)
	want := memory.Block{1, 2, 3, 4}
	cs.Cluster(0).PokeBlock(2, want)
	var got memory.Block
	cs.LocalRead(0, 0, 1, 2, func(b memory.Block) { got = b })
	clk.Run(10)
	if !got.Equal(want) {
		t.Fatalf("local read = %v, want %v", got, want)
	}
}

func TestClusterRemoteReadRoundTrip(t *testing.T) {
	cs, clk := newClusterSystem(t)
	want := memory.Block{7, 8, 9, 10}
	cs.Cluster(1).PokeBlock(0, want)

	var got memory.Block
	var replyAt sim.Slot = -1
	cs.RemoteRead(0, 1, 0, func(b memory.Block, at sim.Slot) { got, replyAt = b, at })
	clk.Run(60)
	if got == nil {
		t.Fatal("remote read never completed")
	}
	if !got.Equal(want) {
		t.Fatalf("remote read = %v, want %v", got, want)
	}
	// Latency ≥ 2×link + β: request link (5) + block access (4) + reply
	// link (5).
	if replyAt < 5+4+5-1 {
		t.Fatalf("remote reply at %d, faster than physically possible", replyAt)
	}
	if cs.RemoteCompleted != 1 {
		t.Fatalf("RemoteCompleted = %d, want 1", cs.RemoteCompleted)
	}
}

func TestClusterRemoteWrite(t *testing.T) {
	cs, clk := newClusterSystem(t)
	data := memory.Block{5, 6, 7, 8}
	done := false
	cs.RemoteWrite(0, 0, 3, data, func(memory.Block, sim.Slot) { done = true })
	clk.Run(60)
	if !done {
		t.Fatal("remote write never completed")
	}
	if got := cs.Cluster(0).PeekBlock(3); !got.Equal(data) {
		t.Fatalf("remote write stored %v, want %v", got, data)
	}
}

// TestClusterRemoteDoesNotDisturbLocal: the remote service uses the free
// division, so local processors keep their conflict-free guarantees (a
// conflict would panic inside CFMemory).
func TestClusterRemoteDoesNotDisturbLocal(t *testing.T) {
	cs, _ := newClusterSystem(t)
	localDone := 0
	// Saturate cluster 0's three local processors with back-to-back reads
	// while remote traffic arrives continuously.
	issuer := sim.TickerFunc(func(tt sim.Slot, ph sim.Phase) {
		if ph != sim.PhaseIssue {
			return
		}
		for p := 0; p < 3; p++ {
			if cs.Cluster(0).CanStart(tt, p) {
				cs.LocalRead(tt, 0, p, 0, func(memory.Block) { localDone++ })
			}
		}
		if tt%4 == 0 {
			cs.RemoteRead(tt, 0, 1, nil)
		}
	})
	// Issuer must run before the system so CanStart sees settled state.
	clk2 := sim.NewClock()
	clk2.Register(issuer)
	clk2.Register(cs)
	clk2.Run(400)
	if localDone < 3*(400/4-2) {
		t.Fatalf("local completions %d, want ~%d: remote traffic disturbed locals", localDone, 3*400/4)
	}
	if cs.RemoteCompleted == 0 {
		t.Fatal("no remote requests served")
	}
}

func TestClusterRemoteQueues(t *testing.T) {
	cs, _ := newClusterSystem(t)
	cs.RemoteRead(0, 1, 0, nil)
	cs.RemoteRead(0, 1, 1, nil)
	if got := cs.PendingRemote(1); got != 2 {
		t.Fatalf("PendingRemote = %d, want 2", got)
	}
}

func TestClusterPanics(t *testing.T) {
	cfg := Config{Processors: 4, BankCycle: 1, WordWidth: 64}
	for name, fn := range map[string]func(){
		"badCfg":      func() { NewClusterSystem(Config{}, 2, 1, 0) },
		"noClusters":  func() { NewClusterSystem(cfg, 0, 1, 0) },
		"noFreeSlot":  func() { NewClusterSystem(cfg, 2, 4, 0) },
		"negDelay":    func() { NewClusterSystem(cfg, 2, 3, -1) },
		"badLocalIdx": func() { NewClusterSystem(cfg, 2, 3, 1).LocalRead(0, 0, 3, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
