package core

import (
	"fmt"
	"strings"

	"cfm/internal/sim"
)

// TimingEvent is one row of a Fig. 3.6-style timing diagram.
type TimingEvent struct {
	Slot sim.Slot
	Bank int
	Kind string // "address", "data"
}

// ReadTiming produces the timing diagram of a block read issued by
// processor p at slot t0 (Fig. 3.6): the address reaches bank k's MAR at
// slot t0+k, and the word comes back c−1 slots later.
func (a *ATSpace) ReadTiming(t0 sim.Slot, p int) []TimingEvent {
	var ev []TimingEvent
	for k := 0; k < a.b; k++ {
		ev = append(ev, TimingEvent{Slot: t0 + sim.Slot(k), Bank: a.VisitBank(t0, p, k), Kind: "address"})
	}
	for k := 0; k < a.b; k++ {
		ev = append(ev, TimingEvent{Slot: a.DataSlot(t0, k), Bank: a.VisitBank(t0, p, k), Kind: "data"})
	}
	return ev
}

// RenderTiming draws a textual timing diagram: one line per bank, one
// column per slot, 'A' where the bank receives the address and 'D' where
// it transfers data.
func (a *ATSpace) RenderTiming(t0 sim.Slot, p int) string {
	ev := a.ReadTiming(t0, p)
	var maxSlot sim.Slot
	for _, e := range ev {
		if e.Slot > maxSlot {
			maxSlot = e.Slot
		}
	}
	width := int(maxSlot-t0) + 1
	rows := make([][]byte, a.b)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, e := range ev {
		col := int(e.Slot - t0)
		switch e.Kind {
		case "address":
			rows[e.Bank][col] = 'A'
		case "data":
			if rows[e.Bank][col] == 'A' {
				rows[e.Bank][col] = 'B' // both in one slot (c == 1)
			} else {
				rows[e.Bank][col] = 'D'
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "read by P%d at slot %d (b=%d, c=%d, β=%d)\n", p, t0, a.b, a.c, a.b+a.c-1)
	for bank, row := range rows {
		fmt.Fprintf(&b, "bank %2d |%s|\n", bank, row)
	}
	return b.String()
}
