package core

import (
	"testing"
	"testing/quick"

	"cfm/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Processors: 4, BankCycle: 2, WordWidth: 32}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []Config{
		{Processors: 0, BankCycle: 1, WordWidth: 1},
		{Processors: 1, BankCycle: 0, WordWidth: 1},
		{Processors: 1, BankCycle: 1, WordWidth: 0},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	// The worked example of §3.1.3: 4 processors, bank cycle 2 → 8 banks.
	c := Config{Processors: 4, BankCycle: 2, WordWidth: 32}
	if c.Banks() != 8 {
		t.Errorf("Banks = %d, want 8", c.Banks())
	}
	if c.BlockWords() != 8 {
		t.Errorf("BlockWords = %d, want 8", c.BlockWords())
	}
	if c.BlockBits() != 256 {
		t.Errorf("BlockBits = %d, want 256", c.BlockBits())
	}
	if c.BlockTime() != 9 {
		t.Errorf("BlockTime = %d, want 9 (β = b + c − 1)", c.BlockTime())
	}
	if c.Period() != 8 {
		t.Errorf("Period = %d, want 8", c.Period())
	}
}

func TestConfigString(t *testing.T) {
	s := Config{Processors: 4, BankCycle: 2, WordWidth: 32}.String()
	if s != "CFM{n=4 c=2 w=32 b=8 l=256 β=9}" {
		t.Fatalf("String() = %q", s)
	}
}

// TestTradeoffTable33 reproduces the dissertation's Table 3.3 exactly:
// feasible configurations for l = 256 bits and c = 2.
func TestTradeoffTable33(t *testing.T) {
	want := []TradeoffRow{
		{Banks: 256, WordWidth: 1, Latency: 257, Processors: 128},
		{Banks: 128, WordWidth: 2, Latency: 129, Processors: 64},
		{Banks: 64, WordWidth: 4, Latency: 65, Processors: 32},
		{Banks: 32, WordWidth: 8, Latency: 33, Processors: 16},
		{Banks: 16, WordWidth: 16, Latency: 17, Processors: 8},
		{Banks: 8, WordWidth: 32, Latency: 9, Processors: 4},
		{Banks: 4, WordWidth: 64, Latency: 5, Processors: 2},
		{Banks: 2, WordWidth: 128, Latency: 3, Processors: 1},
	}
	got := Tradeoff(256, 2)
	if len(got) != len(want) {
		t.Fatalf("Tradeoff rows = %d, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestConfigForBlockErrors(t *testing.T) {
	cases := []struct{ l, b, c int }{
		{256, 0, 2}, // no banks
		{256, 8, 0}, // no cycle
		{255, 8, 2}, // block not divisible by banks
		{256, 6, 4}, // banks not divisible by cycle
		{256, 1, 2}, // banks < cycle ⇒ zero processors
	}
	for i, cs := range cases {
		if _, err := ConfigForBlock(cs.l, cs.b, cs.c); err == nil {
			t.Errorf("case %d (%+v) accepted", i, cs)
		}
	}
}

func TestConfigForBlockRoundTrip(t *testing.T) {
	f := func(nRaw, cRaw, wRaw uint8) bool {
		cfg := Config{
			Processors: 1 + int(nRaw)%32,
			BankCycle:  1 + int(cRaw)%4,
			WordWidth:  1 << (int(wRaw) % 7),
		}
		back, err := ConfigForBlock(cfg.BlockBits(), cfg.Banks(), cfg.BankCycle)
		return err == nil && back == cfg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestATSpaceBankAssignmentC1(t *testing.T) {
	// Fig. 3.3: with c = 1, processor p accesses bank (t+p) mod 4.
	a := NewATSpace(Config{Processors: 4, BankCycle: 1, WordWidth: 64})
	for tt := int64(0); tt < 8; tt++ {
		for p := 0; p < 4; p++ {
			want := (int(tt) + p) % 4
			if got := a.AddressBank(sim.Slot(tt), p); got != want {
				t.Fatalf("AddressBank(%d,%d) = %d, want %d", tt, p, got, want)
			}
		}
	}
}

// TestATSpaceTable31 reproduces Table 3.1: address path connections for
// the 4-processor, 8-bank, c = 2 machine of Fig. 3.5.
func TestATSpaceTable31(t *testing.T) {
	a := NewATSpace(Config{Processors: 4, BankCycle: 2, WordWidth: 32})
	// want[slot][bank] = processor, -1 = unconnected.
	want := [8][8]int{
		{0, -1, 1, -1, 2, -1, 3, -1}, // slot 0
		{-1, 0, -1, 1, -1, 2, -1, 3}, // slot 1
		{3, -1, 0, -1, 1, -1, 2, -1}, // slot 2
		{-1, 3, -1, 0, -1, 1, -1, 2}, // slot 3
		{2, -1, 3, -1, 0, -1, 1, -1}, // slot 4
		{-1, 2, -1, 3, -1, 0, -1, 1}, // slot 5
		{1, -1, 2, -1, 3, -1, 0, -1}, // slot 6
		{-1, 1, -1, 2, -1, 3, -1, 0}, // slot 7
	}
	got := a.ConnectionTable()
	for slot := 0; slot < 8; slot++ {
		for bank := 0; bank < 8; bank++ {
			if got[slot][bank] != want[slot][bank] {
				t.Errorf("slot %d bank %d = %d, want %d", slot, bank, got[slot][bank], want[slot][bank])
			}
		}
	}
}

// TestATSpaceMutuallyExclusive is the core conflict-freedom property
// (§3.1.2): at every slot, no two processors are connected to the same
// bank, for arbitrary n and c.
func TestATSpaceMutuallyExclusive(t *testing.T) {
	f := func(nRaw, cRaw uint8, tRaw uint16) bool {
		cfg := Config{
			Processors: 1 + int(nRaw)%16,
			BankCycle:  1 + int(cRaw)%4,
			WordWidth:  8,
		}
		a := NewATSpace(cfg)
		tt := sim.Slot(tRaw)
		seen := make(map[int]bool)
		for p := 0; p < cfg.Processors; p++ {
			b := a.AddressBank(tt, p)
			if seen[b] {
				return false
			}
			seen[b] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestATSpaceBankSpacing verifies §3.1.3's observation that with c = 2,
// concurrently accessed banks are at least two banks apart, generalized:
// banks addressed in the same slot are ≥ c apart (cyclically).
func TestATSpaceBankSpacing(t *testing.T) {
	f := func(nRaw, cRaw uint8, tRaw uint16) bool {
		cfg := Config{
			Processors: 2 + int(nRaw)%15,
			BankCycle:  1 + int(cRaw)%4,
			WordWidth:  8,
		}
		a := NewATSpace(cfg)
		tt := sim.Slot(tRaw)
		for p := 0; p < cfg.Processors; p++ {
			for q := p + 1; q < cfg.Processors; q++ {
				d := a.AddressBank(tt, p) - a.AddressBank(tt, q)
				if d < 0 {
					d = -d
				}
				if d > cfg.Banks()/2 {
					d = cfg.Banks() - d // cyclic distance
				}
				if d < cfg.BankCycle {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestATSpaceBankRevisitGap: a bank receives consecutive addresses (from
// any processors issuing back-to-back accesses) no closer than c slots —
// the pipelining precondition.
func TestATSpaceBankRevisitGap(t *testing.T) {
	cfg := Config{Processors: 4, BankCycle: 2, WordWidth: 32}
	a := NewATSpace(cfg)
	last := make(map[int]int64)
	for tt := int64(0); tt < 64; tt++ {
		for p := 0; p < cfg.Processors; p++ {
			b := a.AddressBank(sim.Slot(tt), p)
			if prev, ok := last[b]; ok && tt-prev < int64(cfg.BankCycle) {
				t.Fatalf("bank %d addressed at slots %d and %d (< c apart)", b, prev, tt)
			}
			last[b] = tt
		}
	}
}

func TestATSpaceAddressProcessorInverse(t *testing.T) {
	cfg := Config{Processors: 4, BankCycle: 2, WordWidth: 32}
	a := NewATSpace(cfg)
	for tt := int64(0); tt < 16; tt++ {
		for p := 0; p < 4; p++ {
			bank := a.AddressBank(sim.Slot(tt), p)
			if got := a.AddressProcessor(sim.Slot(tt), bank); got != p {
				t.Fatalf("AddressProcessor(%d,%d) = %d, want %d", tt, bank, got, p)
			}
		}
	}
}

func TestATSpaceVisitCoversAllBanks(t *testing.T) {
	f := func(nRaw, cRaw uint8, t0Raw uint16, pRaw uint8) bool {
		cfg := Config{
			Processors: 1 + int(nRaw)%8,
			BankCycle:  1 + int(cRaw)%3,
			WordWidth:  8,
		}
		a := NewATSpace(cfg)
		p := int(pRaw) % cfg.Processors
		t0 := sim.Slot(t0Raw)
		seen := make(map[int]bool)
		for k := 0; k < cfg.Banks(); k++ {
			seen[a.VisitBank(t0, p, k)] = true
		}
		return len(seen) == cfg.Banks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestATSpaceDataSlotFig36(t *testing.T) {
	// Fig. 3.6: c = 2, read issued at slot 0 receives data from its first
	// and second banks at slots 1 and 2.
	a := NewATSpace(Config{Processors: 4, BankCycle: 2, WordWidth: 32})
	if got := a.DataSlot(0, 0); got != 1 {
		t.Errorf("DataSlot(0,0) = %d, want 1", got)
	}
	if got := a.DataSlot(0, 1); got != 2 {
		t.Errorf("DataSlot(0,1) = %d, want 2", got)
	}
	// Completion: β − 1 slots after issue.
	if got := a.CompletionSlot(0); got != 8 {
		t.Errorf("CompletionSlot(0) = %d, want 8 (β=9, slots 0..8)", got)
	}
}

func TestATSpaceNegativeSlots(t *testing.T) {
	a := NewATSpace(Config{Processors: 4, BankCycle: 1, WordWidth: 8})
	if got := a.AddressBank(-1, 0); got != 3 {
		t.Fatalf("AddressBank(-1,0) = %d, want 3", got)
	}
}

func TestATSpacePanics(t *testing.T) {
	a := NewATSpace(Config{Processors: 4, BankCycle: 1, WordWidth: 8})
	for name, fn := range map[string]func(){
		"proc":   func() { a.AddressBank(0, 4) },
		"bank":   func() { a.AddressProcessor(0, -1) },
		"visit":  func() { a.VisitBank(0, 0, 4) },
		"badCfg": func() { NewATSpace(Config{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
