package core

import (
	"bytes"
	"testing"

	"cfm/internal/memory"
	"cfm/internal/sim"
)

// driveCFM runs a deterministic access script against a CFMemory on the
// given engine. Accesses are begun only at Run boundaries — never from a
// ticker — so a plan containing nothing but the CFMemory stays
// all-shardable and, on a batching engine, actually batches. The chunk
// lengths are deliberately not multiples of the episode length, so
// accesses stay in flight across episode truncations.
func driveCFM(eng sim.Engine, cfg Config) (m *CFMemory, tr *sim.Trace) {
	tr = sim.NewTrace()
	m = NewCFMemory(cfg, tr)
	eng.Register(m)
	for blk := 0; blk < 4; blk++ {
		b := make(memory.Block, cfg.Banks())
		for i := range b {
			b[i] = memory.Word(blk*100 + i)
		}
		m.PokeBlock(blk, b)
	}
	now := sim.Slot(0)
	chunk := func(n int64) {
		eng.Run(n)
		now += sim.Slot(n)
	}
	// All processors read concurrently — the headline conflict-free
	// property; a conflict panics inside the (possibly folded) replay.
	for p := 0; p < cfg.Processors; p++ {
		m.StartRead(now, p, p%4, nil)
	}
	chunk(int64(cfg.BlockTime()) + 3)
	// Concurrent writes, flights spanning an episode edge.
	for p := 0; p < cfg.Processors; p++ {
		b := make(memory.Block, cfg.Banks())
		for i := range b {
			b[i] = memory.Word(p*1000 + i)
		}
		m.StartWrite(now, p, (p+1)%4, b, nil)
	}
	chunk(3) // mid-flight truncation
	chunk(int64(cfg.BlockTime()))
	// A quiet tail (the memory parks), then a fresh wave after the park.
	chunk(7)
	for p := 0; p < cfg.Processors; p++ {
		m.StartRead(now, p, (p+2)%4, nil)
	}
	chunk(int64(cfg.BlockTime()) + 2)
	return m, tr
}

// TestCFMemoryEpochEquivalence pins the batched CFMemory against the
// serial oracle: completions, block contents, the order-sensitive trace
// digest, and the full snapshot byte stream must all come out identical
// when the engine folds whole episodes through FinishEpoch.
func TestCFMemoryEpochEquivalence(t *testing.T) {
	for _, cfg := range []Config{cfg41(), cfg42(), {Processors: 8, BankCycle: 2, WordWidth: 16}} {
		sm, str := driveCFM(sim.NewClock(), cfg)

		pc := sim.NewParallelClock(2)
		pc.SetEpochBatch(4)
		bm, btr := driveCFM(pc, cfg)
		pc.Close()

		if bm.Completed != sm.Completed {
			t.Fatalf("%+v: batched completed %d accesses, serial %d", cfg, bm.Completed, sm.Completed)
		}
		for blk := 0; blk < 4; blk++ {
			if got, want := bm.PeekBlock(blk), sm.PeekBlock(blk); !got.Equal(want) {
				t.Fatalf("%+v: block %d = %v under batching, want %v", cfg, blk, got, want)
			}
		}
		if btr.Digest() != str.Digest() {
			t.Fatalf("%+v: trace digest diverged under batching:\nbatched:\n%s\nserial:\n%s",
				cfg, btr, str)
		}
		benc, senc := sim.NewStateEncoder(), sim.NewStateEncoder()
		bm.SaveState(benc)
		sm.SaveState(senc)
		if benc.Err() != nil || senc.Err() != nil {
			t.Fatalf("%+v: snapshot failed: %v / %v", cfg, benc.Err(), senc.Err())
		}
		if !bytes.Equal(benc.Bytes(), senc.Bytes()) {
			t.Fatalf("%+v: snapshot bytes diverged under batching", cfg)
		}
		// Non-vacuity: the plan must actually have amortized slots into
		// episodes — otherwise this test only re-ran the classic body.
		if pc.Epochs() >= pc.SlotsFired() {
			t.Fatalf("%+v: plan never batched: %d epochs over %d fired slots", cfg, pc.Epochs(), pc.SlotsFired())
		}
	}
}

// TestCFMemoryBeginDuringFoldPanics pins the begin() guard: a done
// callback that immediately starts the next access would issue into the
// middle of an already-ticked episode; CFMemory must refuse loudly
// rather than corrupt the AT-space schedule.
func TestCFMemoryBeginDuringFoldPanics(t *testing.T) {
	cfg := cfg42()
	pc := sim.NewParallelClock(2)
	pc.SetEpochBatch(4)
	m := NewCFMemory(cfg, nil)
	pc.Register(m)
	defer pc.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("StartRead from a done callback during an epoch fold did not panic")
		}
	}()
	m.StartRead(0, 0, 0, func(memory.Block) {
		m.StartRead(sim.Slot(cfg.BlockTime()), 1, 1, nil)
	})
	pc.Run(int64(cfg.BlockTime()) + 4)
}
