package core

import (
	"testing"

	"cfm/internal/sim"
)

// allocConfig: 32 processors, 4 clusters of 8.
func allocConfig() PartialConfig {
	return PartialConfig{
		Processors: 32, Modules: 4, BlockWords: 16, BankCycle: 2,
		Locality: 0.9, AccessRate: 0.04, RetryMean: 4, Seed: 1,
	}
}

// skewedJobs: 24 jobs concentrated on modules 0 and 1.
func skewedJobs() []Job {
	var jobs []Job
	for i := 0; i < 24; i++ {
		jobs = append(jobs, Job{Home: i % 2})
	}
	return jobs
}

// balancedJobs: one job per processor, evenly spread over modules.
func balancedJobs(cfg PartialConfig) []Job {
	var jobs []Job
	for i := 0; i < cfg.Processors; i++ {
		jobs = append(jobs, Job{Home: i % cfg.Modules})
	}
	return jobs
}

func TestAllocateAffinePerfectWhenBalanced(t *testing.T) {
	cfg := allocConfig()
	pl, err := AllocateAffine(cfg, balancedJobs(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Jobs() != 32 {
		t.Fatalf("placed %d jobs, want 32", pl.Jobs())
	}
	if loc := pl.LocalityOf(cfg); loc != 1.0 {
		t.Fatalf("affine locality = %v, want 1.0 for balanced jobs", loc)
	}
}

func TestAllocateAffineOverflow(t *testing.T) {
	cfg := allocConfig()
	// 24 jobs on 2 modules: 8+8 fit their home clusters, 8 overflow.
	pl, err := AllocateAffine(cfg, skewedJobs())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Jobs() != 24 {
		t.Fatalf("placed %d jobs", pl.Jobs())
	}
	if loc := pl.LocalityOf(cfg); loc < 0.6 || loc > 0.7 {
		t.Fatalf("affine locality = %v, want 16/24 ≈ 0.667", loc)
	}
}

func TestAllocateScatterDestroysLocality(t *testing.T) {
	cfg := allocConfig()
	pl, err := AllocateScatter(cfg, skewedJobs())
	if err != nil {
		t.Fatal(err)
	}
	// Scatter fills processors 0..23 in order: jobs for modules 0 and 1
	// land in clusters 0..2 — locality is whatever falls out, well below
	// affine's.
	affine, _ := AllocateAffine(cfg, skewedJobs())
	if pl.LocalityOf(cfg) >= affine.LocalityOf(cfg) {
		t.Fatalf("scatter locality %v not below affine %v", pl.LocalityOf(cfg), affine.LocalityOf(cfg))
	}
}

func TestAllocateRandomPlacesAll(t *testing.T) {
	cfg := allocConfig()
	pl, err := AllocateRandom(cfg, skewedJobs(), sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Jobs() != 24 {
		t.Fatalf("placed %d jobs", pl.Jobs())
	}
}

func TestAllocateErrors(t *testing.T) {
	cfg := allocConfig()
	tooMany := make([]Job, 33)
	if _, err := AllocateAffine(cfg, tooMany); err == nil {
		t.Fatal("33 jobs accepted")
	}
	if _, err := AllocateScatter(cfg, []Job{{Home: 9}}); err == nil {
		t.Fatal("bad home accepted")
	}
	if _, err := AllocateRandom(cfg, []Job{{Home: -1}}, sim.NewRNG(1)); err == nil {
		t.Fatal("negative home accepted")
	}
}

// runPlacement simulates a placement and returns its efficiency.
func runPlacement(t *testing.T, cfg PartialConfig, pl Placement, slots int64) *Partial {
	t.Helper()
	cfg.Homes = pl
	p := NewPartial(cfg)
	clk := sim.NewClock()
	clk.Register(p)
	clk.Run(slots)
	return p
}

// TestAffineBeatsScatterUnderLoad is the §7.2 result: locality-preserving
// allocation yields measurably higher memory access efficiency than
// locality-blind allocation of the same job set.
func TestAffineBeatsScatterUnderLoad(t *testing.T) {
	cfg := allocConfig()
	jobs := balancedJobs(cfg)
	aff, _ := AllocateAffine(cfg, jobs)
	sca, _ := AllocateScatter(cfg, jobs)
	// Scatter of balanced jobs in index order coincidentally matches the
	// affine layout (job i%4 lands in cluster i/8)... verify they differ;
	// if not, skew the jobs.
	if sca.LocalityOf(cfg) == aff.LocalityOf(cfg) {
		jobs = skewedJobs()
		aff, _ = AllocateAffine(cfg, jobs)
		sca, _ = AllocateScatter(cfg, jobs)
	}
	pa := runPlacement(t, cfg, aff, 300000)
	ps := runPlacement(t, cfg, sca, 300000)
	if pa.Efficiency() <= ps.Efficiency() {
		t.Fatalf("affine efficiency %v not above scatter %v (localities %v vs %v)",
			pa.Efficiency(), ps.Efficiency(), aff.LocalityOf(cfg), sca.LocalityOf(cfg))
	}
}

func TestIdleProcessorsIssueNothing(t *testing.T) {
	cfg := allocConfig()
	pl := newPlacement(cfg.Processors) // all idle
	p := runPlacement(t, cfg, pl, 50000)
	if p.Completed != 0 || p.LocalAcc+p.RemoteAcc != 0 {
		t.Fatalf("idle system issued %d accesses", p.Completed)
	}
}

func TestHomesValidation(t *testing.T) {
	cfg := allocConfig()
	cfg.Homes = []int{0} // wrong length
	if err := cfg.Validate(); err == nil {
		t.Fatal("short Homes accepted")
	}
	cfg.Homes = make([]int, 32)
	cfg.Homes[5] = 4 // out of range
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-range home accepted")
	}
}

func TestPlacementLocalityEmpty(t *testing.T) {
	if loc := (Placement{-1, -1}).LocalityOf(allocConfig()); loc != 0 {
		t.Fatalf("empty placement locality %v", loc)
	}
}

// TestFullLocalityAffinePlacementConflictFree: a balanced affine
// placement at λ=1 is exactly as conflict-free as the default layout.
func TestFullLocalityAffinePlacementConflictFree(t *testing.T) {
	cfg := allocConfig()
	cfg.Locality = 1
	pl, _ := AllocateAffine(cfg, balancedJobs(cfg))
	p := runPlacement(t, cfg, pl, 100000)
	if p.Retries != 0 {
		t.Fatalf("affine λ=1 placement saw %d retries", p.Retries)
	}
}
