package core

import (
	"testing"
	"testing/quick"

	"cfm/internal/memory"
	"cfm/internal/sim"
)

func TestFullyConnectedHops(t *testing.T) {
	f := FullyConnected{N: 5}
	if f.Hops(2, 2) != 0 || f.Hops(0, 4) != 1 {
		t.Fatal("fully connected hops wrong")
	}
	if Diameter(f) != 1 {
		t.Fatalf("diameter %d", Diameter(f))
	}
}

func TestRingHops(t *testing.T) {
	r := Ring{N: 6}
	cases := [][3]int{{0, 1, 1}, {0, 3, 3}, {0, 5, 1}, {1, 4, 3}, {2, 2, 0}}
	for _, c := range cases {
		if got := r.Hops(c[0], c[1]); got != c[2] {
			t.Errorf("ring Hops(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
	if Diameter(r) != 3 {
		t.Fatalf("ring(6) diameter %d, want 3", Diameter(r))
	}
}

func TestMesh2DHops(t *testing.T) {
	m := Mesh2D{Rows: 3, Cols: 4}
	if m.Clusters() != 12 {
		t.Fatalf("clusters %d", m.Clusters())
	}
	// (0,0)=0 to (2,3)=11: 2+3 = 5.
	if got := m.Hops(0, 11); got != 5 {
		t.Fatalf("mesh Hops(0,11) = %d, want 5", got)
	}
	if Diameter(m) != 5 {
		t.Fatalf("mesh diameter %d", Diameter(m))
	}
}

func TestHypercubeHops(t *testing.T) {
	h := Hypercube{Dim: 4}
	if h.Clusters() != 16 {
		t.Fatalf("clusters %d", h.Clusters())
	}
	if got := h.Hops(0b0000, 0b1011); got != 3 {
		t.Fatalf("hypercube Hops = %d, want 3", got)
	}
	if Diameter(h) != 4 {
		t.Fatalf("hypercube diameter %d, want 4", Diameter(h))
	}
}

// TestHopsMetricProperties: symmetry, identity, triangle inequality —
// for all topologies.
func TestHopsMetricProperties(t *testing.T) {
	topos := []Topology{FullyConnected{N: 7}, Ring{N: 8}, Mesh2D{Rows: 3, Cols: 3}, Hypercube{Dim: 3}}
	f := func(aRaw, bRaw, cRaw uint8, which uint8) bool {
		topo := topos[int(which)%len(topos)]
		n := topo.Clusters()
		a, b, c := int(aRaw)%n, int(bRaw)%n, int(cRaw)%n
		if topo.Hops(a, a) != 0 {
			return false
		}
		if topo.Hops(a, b) != topo.Hops(b, a) {
			return false
		}
		return topo.Hops(a, c) <= topo.Hops(a, b)+topo.Hops(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMeanHops(t *testing.T) {
	if got := MeanHops(FullyConnected{N: 4}); got != 1 {
		t.Fatalf("fully connected mean hops %v", got)
	}
	if MeanHops(FullyConnected{N: 1}) != 0 {
		t.Fatal("single-cluster mean hops nonzero")
	}
	// Denser topologies have smaller mean distance at equal size.
	if MeanHops(Hypercube{Dim: 3}) >= MeanHops(Ring{N: 8}) {
		t.Fatal("hypercube(8) not denser than ring(8)")
	}
}

func TestTopologyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"range": func() { Ring{N: 4}.Hops(0, 4) },
		"neg":   func() { Mesh2D{Rows: 2, Cols: 2}.Hops(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// topoSystem builds a 4-cluster system on a ring with 3 cycles per hop.
func topoSystem(t *testing.T) (*ClusterSystem, *sim.Clock) {
	t.Helper()
	cfg := Config{Processors: 4, BankCycle: 1, WordWidth: 64}
	cs := NewClusterSystem(cfg, 4, 3, 1)
	cs.SetTopology(Ring{N: 4}, 3)
	clk := sim.NewClock()
	clk.Register(cs)
	return cs, clk
}

// TestRemoteLatencyScalesWithHops: a read to an adjacent ring cluster
// (1 hop) returns sooner than one to the opposite cluster (2 hops).
func TestRemoteLatencyScalesWithHops(t *testing.T) {
	measure := func(to int) sim.Slot {
		cs, clk := topoSystem(t)
		cs.Cluster(to).PokeBlock(0, memory.Block{1, 2, 3, 4})
		var at sim.Slot = -1
		cs.RemoteReadFrom(0, 0, to, 0, func(_ memory.Block, a sim.Slot) { at = a })
		clk.Run(100)
		if at < 0 {
			t.Fatalf("remote read to %d never completed", to)
		}
		return at
	}
	near, far := measure(1), measure(2)
	// 1 hop = 3 cycles each way; 2 hops = 6: the far read is 6 cycles
	// slower end to end.
	if far-near != 6 {
		t.Fatalf("far %d − near %d = %d, want 6 (2 extra hops × 3 cycles)", far, near, far-near)
	}
}

func TestSetTopologyPanics(t *testing.T) {
	cfg := Config{Processors: 4, BankCycle: 1, WordWidth: 64}
	cs := NewClusterSystem(cfg, 4, 3, 1)
	for name, fn := range map[string]func(){
		"size":  func() { cs.SetTopology(Ring{N: 5}, 1) },
		"delay": func() { cs.SetTopology(Ring{N: 4}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestTopologyStringers cover the display names.
func TestTopologyStringers(t *testing.T) {
	cases := map[string]Topology{
		"fully-connected(3)": FullyConnected{N: 3},
		"ring(5)":            Ring{N: 5},
		"mesh(2x3)":          Mesh2D{Rows: 2, Cols: 3},
		"hypercube(3)":       Hypercube{Dim: 3},
	}
	for want, topo := range cases {
		if got := topo.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
