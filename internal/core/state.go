package core

import (
	"cfm/internal/memory"
	"cfm/internal/sim"
)

// This file implements sim.Stater for the core simulators. Callbacks are
// code, not data: a snapshot records only whether an in-flight access or
// remote request carried one, and restoring such a snapshot requires the
// owning layer (ClusterSystem internally, the harness via the rebinder
// hooks) to reconstruct the closure. Save fails loudly — via Failf —
// rather than silently dropping a callback that the resumed run would
// then never fire.

// saveProcs encodes a []procState with its length.
func saveProcs(enc *sim.StateEncoder, s []procState) {
	enc.Int(len(s))
	for _, v := range s {
		enc.Int(int(v))
	}
}

// loadProcs restores a []procState in place (length fixed by
// configuration).
func loadProcs(dec *sim.StateDecoder, s []procState) {
	if n := dec.Count(); n != len(s) && dec.Err() == nil {
		dec.Failf("core: snapshot has %d processor states, system has %d", n, len(s))
		return
	}
	for i := range s {
		v := dec.Int()
		if v < int(procIdle) || v > int(procInFlight) {
			dec.Failf("core: invalid processor state %d", v)
			return
		}
		s[i] = procState(v)
	}
}

// SetDoneRebinder installs the hook LoadState uses to reconstruct the
// completion callbacks of in-flight accesses. A harness that checkpoints
// while accesses with callbacks are in flight must install one before
// restoring; returning nil from the hook fails the restore.
func (m *CFMemory) SetDoneRebinder(f func(proc int, kind AccessKind, offset int, start sim.Slot) func(memory.Block)) {
	m.doneRebind = f
}

// SaveState implements sim.Stater for the conflict-free memory: bank
// contents and timing (in bank order), every in-flight access, the
// per-processor address-path clocks, and the completion count. The AT
// space, pools, and stage buffers are configuration or scratch.
func (m *CFMemory) SaveState(enc *sim.StateEncoder) {
	for _, bk := range m.banks {
		bk.SaveState(enc)
	}
	enc.Int(len(m.cur))
	for p := range m.cur {
		enc.Int(len(m.cur[p]))
		for _, a := range m.cur[p] {
			enc.Int(int(a.kind))
			enc.Int(a.offset)
			enc.Slot(a.start)
			memory.SaveBlock(enc, a.buf)
			enc.Bool(a.done != nil)
		}
	}
	sim.SaveSlots(enc, m.free)
	enc.I64(m.Completed)
}

// LoadState implements sim.Stater.
func (m *CFMemory) LoadState(dec *sim.StateDecoder) {
	for _, bk := range m.banks {
		bk.LoadState(dec)
	}
	if n := dec.Count(); n != len(m.cur) && dec.Err() == nil {
		dec.Failf("core: snapshot has %d processors, memory has %d", n, len(m.cur))
		return
	}
	for p := range m.cur {
		for _, a := range m.cur[p] {
			m.recycle(a)
		}
		m.cur[p] = m.cur[p][:0]
		n := dec.Count()
		for i := 0; i < n && dec.Err() == nil; i++ {
			a := m.alloc(p)
			k := dec.Int()
			if k < int(ReadBlock) || k > int(WriteBlock) {
				dec.Failf("core: invalid access kind %d", k)
				return
			}
			a.kind = AccessKind(k)
			a.offset = dec.Int()
			a.start = dec.Slot()
			blk := memory.LoadBlock(dec)
			if dec.Err() != nil {
				return
			}
			if len(blk) != m.cfg.Banks() {
				dec.Failf("core: in-flight block of %d words, memory has %d banks", len(blk), m.cfg.Banks())
				return
			}
			copy(a.buf, blk)
			a.done = nil
			if dec.Bool() {
				if m.doneRebind == nil {
					dec.Failf("core: P%d has an in-flight %s with a completion callback but no rebinder is installed (SetDoneRebinder)", p, a.kind)
					return
				}
				a.done = m.doneRebind(p, a.kind, a.offset, a.start)
				if a.done == nil {
					dec.Failf("core: done rebinder returned nil for P%d %s offset %d (start %d)", p, a.kind, a.offset, a.start)
					return
				}
			}
			m.cur[p] = append(m.cur[p], a)
		}
	}
	sim.LoadSlots(dec, m.free)
	m.Completed = dec.I64()
}

// saveRemoteReq encodes one queued or in-service remote request. The
// reply callback is presence-only; LoadState rebuilds it through the
// system's reply rebinder.
func saveRemoteReq(enc *sim.StateEncoder, r *remoteReq) {
	enc.Int(int(r.kind))
	enc.Int(r.offset)
	memory.SaveBlock(enc, r.data)
	enc.Slot(r.arrive)
	enc.Int(r.replyDelay)
	enc.Bool(r.replyTo != nil)
}

// loadRemoteReq decodes one remote request for serving cluster ci,
// rebuilding its replyTo through the harness rebinder when present.
func (cs *ClusterSystem) loadRemoteReq(dec *sim.StateDecoder, ci int) *remoteReq {
	r := &remoteReq{}
	k := dec.Int()
	if dec.Err() != nil {
		return r
	}
	if k < int(ReadBlock) || k > int(WriteBlock) {
		dec.Failf("core: invalid remote access kind %d", k)
		return r
	}
	r.kind = AccessKind(k)
	r.offset = dec.Int()
	r.data = memory.LoadBlock(dec)
	r.arrive = dec.Slot()
	r.replyDelay = dec.Int()
	if dec.Bool() {
		if cs.replyRebind == nil {
			dec.Failf("core: cluster %d has a remote %s with a reply callback but no rebinder is installed (SetReplyRebinder)", ci, r.kind)
			return r
		}
		r.replyTo = cs.replyRebind(ci, r.kind, r.offset, r.arrive)
		if r.replyTo == nil && dec.Err() == nil {
			dec.Failf("core: reply rebinder returned nil for cluster %d %s offset %d (arrive %d)", ci, r.kind, r.offset, r.arrive)
		}
	}
	return r
}

// SetReplyRebinder installs the hook LoadState uses to reconstruct the
// harness replyTo callbacks of queued and in-service remote requests.
func (cs *ClusterSystem) SetReplyRebinder(f func(cluster int, kind AccessKind, offset int, arrive sim.Slot) func(memory.Block, sim.Slot)) {
	cs.replyRebind = f
}

// SetLocalDoneRebinder installs the hook LoadState uses to reconstruct
// harness callbacks of in-flight LOCAL accesses (processors below the
// free division). Remote-service callbacks are rebuilt internally.
func (cs *ClusterSystem) SetLocalDoneRebinder(f func(cluster, proc int, kind AccessKind, offset int, start sim.Slot) func(memory.Block)) {
	cs.localDoneRebind = f
}

// SaveState implements sim.Stater for the multi-cluster system: the
// served-remote count, then per cluster its pending queue, its
// in-service requests, and its member memory's full state. Topology and
// link delays are configuration.
func (cs *ClusterSystem) SaveState(enc *sim.StateEncoder) {
	enc.I64(cs.RemoteCompleted)
	enc.Int(len(cs.clusters))
	for ci, cl := range cs.clusters {
		sim.SaveQueue(enc, &cs.queues[ci], saveRemoteReq)
		enc.Int(len(cs.serving[ci]))
		for _, rec := range cs.serving[ci] {
			saveRemoteReq(enc, rec.req)
			enc.Slot(rec.start)
		}
		cl.SaveState(enc)
	}
}

// LoadState implements sim.Stater. In-service requests are loaded before
// the member memory so the memory's in-flight free-division accesses can
// rebind their completion callbacks to freshly built reply closures;
// local-access callbacks delegate to the harness rebinder.
func (cs *ClusterSystem) LoadState(dec *sim.StateDecoder) {
	cs.RemoteCompleted = dec.I64()
	if n := dec.Count(); n != len(cs.clusters) && dec.Err() == nil {
		dec.Failf("core: snapshot has %d clusters, system has %d", n, len(cs.clusters))
		return
	}
	for ci, cl := range cs.clusters {
		ci := ci
		sim.LoadQueue(dec, &cs.queues[ci], func(d *sim.StateDecoder) *remoteReq {
			return cs.loadRemoteReq(d, ci)
		})
		ns := dec.Count()
		cs.serving[ci] = cs.serving[ci][:0]
		for i := 0; i < ns && dec.Err() == nil; i++ {
			rec := &servingRec{req: cs.loadRemoteReq(dec, ci)}
			rec.start = dec.Slot()
			cs.serving[ci] = append(cs.serving[ci], rec)
		}
		if dec.Err() != nil {
			return
		}
		cl.SetDoneRebinder(func(proc int, kind AccessKind, offset int, start sim.Slot) func(memory.Block) {
			if proc == cs.freeDiv {
				for _, rec := range cs.serving[ci] {
					if rec.start == start {
						return cs.makeReply(ci, rec)
					}
				}
				return nil // no in-service record matches: fail the restore
			}
			if cs.localDoneRebind == nil {
				return nil
			}
			return cs.localDoneRebind(ci, proc, kind, offset, start)
		})
		cl.LoadState(dec)
		if dec.Err() != nil {
			return
		}
	}
}

// SaveState implements sim.Stater for the partially conflict-free
// system: per-processor RNG streams, port busy clocks, every processor
// automaton, and the public measurements.
func (p *Partial) SaveState(enc *sim.StateEncoder) {
	enc.Int(len(p.rngs))
	for i := range p.rngs {
		enc.RNG(&p.rngs[i])
	}
	sim.SaveSlots(enc, p.ports)
	saveProcs(enc, p.state)
	sim.SaveSlots(enc, p.wakeAt)
	sim.SaveSlots(enc, p.doneAt)
	sim.SaveSlots(enc, p.issuedAt)
	sim.SaveSlots(enc, p.nextArrival)
	enc.Int(len(p.backlog))
	for i := range p.backlog {
		sim.SaveQueue(enc, &p.backlog[i], func(e *sim.StateEncoder, v sim.Slot) { e.Slot(v) })
	}
	enc.Int(len(p.targetMod))
	for _, m := range p.targetMod {
		enc.Int(int(m))
	}
	enc.I64(p.Completed)
	enc.I64(p.Retries)
	enc.I64(p.TotalLatency)
	enc.I64(p.LocalAcc)
	enc.I64(p.RemoteAcc)
}

// LoadState implements sim.Stater.
func (p *Partial) LoadState(dec *sim.StateDecoder) {
	if n := dec.Count(); n != len(p.rngs) && dec.Err() == nil {
		dec.Failf("core: snapshot has %d RNG streams, system has %d", n, len(p.rngs))
		return
	}
	for i := range p.rngs {
		dec.RNG(&p.rngs[i])
	}
	sim.LoadSlots(dec, p.ports)
	loadProcs(dec, p.state)
	sim.LoadSlots(dec, p.wakeAt)
	sim.LoadSlots(dec, p.doneAt)
	sim.LoadSlots(dec, p.issuedAt)
	sim.LoadSlots(dec, p.nextArrival)
	if n := dec.Count(); n != len(p.backlog) && dec.Err() == nil {
		dec.Failf("core: snapshot has %d backlogs, system has %d", n, len(p.backlog))
		return
	}
	for i := range p.backlog {
		sim.LoadQueue(dec, &p.backlog[i], func(d *sim.StateDecoder) sim.Slot { return d.Slot() })
	}
	if n := dec.Count(); n != len(p.targetMod) && dec.Err() == nil {
		dec.Failf("core: snapshot has %d target modules, system has %d", n, len(p.targetMod))
		return
	}
	for i := range p.targetMod {
		p.targetMod[i] = int32(dec.Int())
	}
	p.Completed = dec.I64()
	p.Retries = dec.I64()
	p.TotalLatency = dec.I64()
	p.LocalAcc = dec.I64()
	p.RemoteAcc = dec.I64()
	// nextEvent is derived state (the per-processor quiescence bound the
	// tick sweep skips on); rebuild it from the restored automata.
	for i := range p.nextEvent {
		p.nextEvent[i] = p.eventSlot(i)
	}
}

// SaveState implements sim.Stater for the slot-shared CFM (§7.2): the
// RNG, per-division port clocks, every processor automaton with its
// timing and backlog, and the measurements. The configuration is not
// serialized — restore targets an identically built system.
func (s *Shared) SaveState(enc *sim.StateEncoder) {
	enc.RNG(s.rng)
	sim.SaveSlots(enc, s.ports)
	saveProcs(enc, s.state)
	sim.SaveSlots(enc, s.wakeAt)
	sim.SaveSlots(enc, s.doneAt)
	sim.SaveSlots(enc, s.issuedAt)
	sim.SaveSlots(enc, s.nextArrival)
	enc.Int(len(s.backlog))
	for i := range s.backlog {
		sim.SaveQueue(enc, &s.backlog[i], func(e *sim.StateEncoder, v sim.Slot) { e.Slot(v) })
	}
	enc.I64(s.Completed)
	enc.I64(s.Retries)
	enc.I64(s.TotalLatency)
	enc.I64(s.busySlots)
	enc.Slot(s.horizon)
}

// LoadState implements sim.Stater.
func (s *Shared) LoadState(dec *sim.StateDecoder) {
	dec.RNG(s.rng)
	sim.LoadSlots(dec, s.ports)
	loadProcs(dec, s.state)
	sim.LoadSlots(dec, s.wakeAt)
	sim.LoadSlots(dec, s.doneAt)
	sim.LoadSlots(dec, s.issuedAt)
	sim.LoadSlots(dec, s.nextArrival)
	if n := dec.Count(); n != len(s.backlog) && dec.Err() == nil {
		dec.Failf("core: snapshot has %d backlogs, system has %d", n, len(s.backlog))
		return
	}
	for i := range s.backlog {
		sim.LoadQueue(dec, &s.backlog[i], func(d *sim.StateDecoder) sim.Slot { return d.Slot() })
	}
	s.Completed = dec.I64()
	s.Retries = dec.I64()
	s.TotalLatency = dec.I64()
	s.busySlots = dec.I64()
	s.horizon = dec.Slot()
}
