package core

import (
	"fmt"

	"cfm/internal/flight"
	"cfm/internal/metrics"
	"cfm/internal/sim"
)

// PartialConfig parameterizes a partially conflict-free system (§3.2.2,
// §3.4.2): n processors, m conflict-free memory modules of blockWords
// banks each (c·n banks total), locality λ, and an open-loop access rate
// r per processor per cycle — the system behind Figs. 3.14 and 3.15.
type PartialConfig struct {
	Processors int     // n
	Modules    int     // m
	BlockWords int     // banks (and words) per module = block size
	BankCycle  int     // c
	Locality   float64 // λ: fraction of accesses to the local cluster
	AccessRate float64 // r
	RetryMean  int     // average cycles before retrying a conflicting access
	Seed       uint64

	// Homes optionally assigns each processor the home module of the job
	// placed on it (−1 = idle processor, issues no accesses); when nil,
	// every processor's home is its own cluster's module. This is the
	// hook for the §7.2 processor-allocation study (see alloc.go): a
	// placement that puts a job outside its home cluster turns its
	// λ-fraction of "local" accesses into remote, conflict-prone ones.
	Homes []int
}

// Validate reports a descriptive error for an unusable configuration.
func (c PartialConfig) Validate() error {
	switch {
	case c.Processors < 1:
		return fmt.Errorf("core: need >=1 processor, got %d", c.Processors)
	case c.Modules < 1:
		return fmt.Errorf("core: need >=1 module, got %d", c.Modules)
	case c.BlockWords < 1:
		return fmt.Errorf("core: block of %d words invalid", c.BlockWords)
	case c.BankCycle < 1:
		return fmt.Errorf("core: bank cycle %d < 1", c.BankCycle)
	case c.Locality < 0 || c.Locality > 1:
		return fmt.Errorf("core: locality %v out of [0,1]", c.Locality)
	case c.AccessRate < 0 || c.AccessRate > 1:
		return fmt.Errorf("core: access rate %v out of [0,1]", c.AccessRate)
	case c.RetryMean < 1:
		return fmt.Errorf("core: retry mean %d < 1", c.RetryMean)
	case c.Processors%c.Modules != 0:
		return fmt.Errorf("core: %d processors not divisible into %d clusters", c.Processors, c.Modules)
	case c.BlockWords%c.BankCycle != 0:
		return fmt.Errorf("core: module of %d banks not divisible by cycle %d", c.BlockWords, c.BankCycle)
	case c.BlockWords/c.BankCycle != c.Processors/c.Modules:
		return fmt.Errorf("core: module supports %d conflict-free processors but clusters have %d",
			c.BlockWords/c.BankCycle, c.Processors/c.Modules)
	}
	if c.Homes != nil {
		if len(c.Homes) != c.Processors {
			return fmt.Errorf("core: %d homes for %d processors", len(c.Homes), c.Processors)
		}
		for p, h := range c.Homes {
			if h < -1 || h >= c.Modules {
				return fmt.Errorf("core: processor %d home module %d out of range", p, h)
			}
		}
	}
	return nil
}

// Home returns processor p's home module: the placed job's affinity when
// Homes is set (−1 for an idle processor), else p's own cluster.
func (c PartialConfig) Home(p int) int {
	if c.Homes != nil {
		return c.Homes[p]
	}
	return c.Cluster(p)
}

// BlockTime returns β = blockWords + c − 1.
func (c PartialConfig) BlockTime() int { return c.BlockWords + c.BankCycle - 1 }

// ClusterSize returns n/m, the processors per conflict-free cluster.
func (c PartialConfig) ClusterSize() int { return c.Processors / c.Modules }

// Cluster returns the conflict-free cluster (and local module) of a
// processor: clusters group n/m consecutive processors, one from each
// contention set.
func (c PartialConfig) Cluster(p int) int { return p / c.ClusterSize() }

// ContentionSet returns the AT-space division processor p uses at every
// module. Within a cluster all processors have distinct sets, so local
// accesses never conflict.
func (c PartialConfig) ContentionSet(p int) int { return p % c.ClusterSize() }

// Partial simulates the partially conflict-free system: each module has
// one "port" per contention set; a block access holds its (module, set)
// port for β slots; two accesses conflict only when they need the same
// port at overlapping times — processors in different contention sets are
// conflict-free by construction, as are all accesses within a cluster.
// It implements sim.Ticker with the same open-loop arrival process as the
// conventional baseline, so efficiencies are directly comparable.
//
// Think times and retry delays are materialized when the triggering event
// fires, never per slot, so skip-ahead jumps leave the streams intact.
//
//cfm:rng=event
//cfm:soa
type Partial struct {
	cfg PartialConfig
	// rngs holds one independent stream per processor (split from the
	// config seed), so a processor's stochastic behaviour never depends
	// on the order in which other processors draw — the property that
	// lets contention-set shards run concurrently. The streams are
	// stored inline (sim.RNG is a single word) so the dense tick sweep
	// reads them off one flat array instead of chasing per-processor
	// heap pointers.
	rngs []sim.RNG

	// ports[(module, set)] busy-until slot.
	ports []sim.Slot

	state       []procState
	wakeAt      []sim.Slot
	doneAt      []sim.Slot
	issuedAt    []sim.Slot
	nextArrival []sim.Slot
	backlog     []sim.Queue[sim.Slot] //cfm:soa-ok FIFO headers are flat; buffers are checkpointed state
	// targetMod is int32 (and procState uint8): narrowing the swept
	// arrays shrinks the per-slot cache footprint — snapshots encode
	// through enc.Int either way, so the width is invisible to them.
	targetMod []int32

	// nextEvent[i] caches the earliest slot at which processor i has any
	// work: its next open-loop arrival, retry wake, or completion —
	// exactly the per-processor minimum Horizon folds. The tick sweep
	// consults this ONE dense array and skips a processor entirely while
	// t < nextEvent[i]; the skipped iterations are provably no-ops (no
	// state change, no RNG draw), so the sweep stays bit-identical while
	// quiescent processors cost one compare on one cache line instead of
	// a walk over every per-processor array. Derived state: rebuilt after
	// LoadState, never serialized.
	//cfm:rebuilt
	nextEvent []sim.Slot
	// home[i] is processor i's home module, materialized from the
	// configuration so the issue path reads a flat array instead of
	// re-deriving Cluster(i) (an integer division) per event. cs and bt
	// likewise pin ClusterSize and BlockTime, both derived by division
	// in the config accessors, as plain loads for the per-event paths.
	home []int32
	cs   int
	bt   sim.Slot

	// stage buffers per-shard measurement deltas, folded by FinishShards
	// (per slot) or FinishEpoch (per batched episode).
	//cfm:no-save fold scratch, drained by FinishShards/FinishEpoch before any checkpoint boundary
	stage []partialStage //cfm:soa-ok fold scratch, one element per shard, not swept per processor
	// epochCursors is FinishEpoch's slot-major merge scratch, one cursor
	// per shard (preallocated; the fold must stay alloc-free).
	//cfm:no-save merge scratch, re-zeroed at the top of every FinishEpoch fold
	epochCursors []int

	// Measurements.
	Completed    int64
	Retries      int64
	TotalLatency int64
	LocalAcc     int64
	RemoteAcc    int64

	// Registry handles (nil when unobserved). All adds happen in
	// FinishShards from staged deltas, so snapshots are deterministic at
	// any worker count; latencies for the histogram are staged per shard
	// only when instrumented, keeping the uninstrumented hot path free of
	// extra work (the <2% engine-bench budget).
	mCompleted *metrics.Counter
	mRetries   *metrics.Counter
	mLatency   *metrics.Counter
	mLocal     *metrics.Counter
	mRemote    *metrics.Counter
	mLatHist   *metrics.Histogram

	// Flight recorder (nil when unobserved). All stages happen in shard
	// context, so events are staged per contention set and folded in
	// FinishShards in ascending shard order.
	flt *flight.Recorder
}

// partialStage buffers one contention-set shard's measurement deltas.
type partialStage struct {
	completed    int64
	retries      int64
	totalLatency int64
	localAcc     int64
	remoteAcc    int64
	lats         []int64 // per-access latencies, staged only when instrumented
	flights      []flight.Event
}

// procState is uint8 so a 4096-processor state array occupies 4KB, not
// 32: the dense sweep touches it every event, and the narrow form keeps
// it resident next to the other hot arrays.
type procState uint8

const (
	procIdle procState = iota
	procWaiting
	procInFlight
)

// NewPartial builds the simulator; it panics on invalid configuration.
func NewPartial(cfg PartialConfig) *Partial {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Processors
	p := &Partial{
		cfg:          cfg,
		rngs:         make([]sim.RNG, n),
		ports:        make([]sim.Slot, cfg.Modules*cfg.ClusterSize()),
		state:        make([]procState, n),
		wakeAt:       make([]sim.Slot, n),
		doneAt:       make([]sim.Slot, n),
		issuedAt:     make([]sim.Slot, n),
		nextArrival:  make([]sim.Slot, n),
		backlog:      make([]sim.Queue[sim.Slot], n),
		targetMod:    make([]int32, n),
		nextEvent:    make([]sim.Slot, n),
		home:         make([]int32, n),
		cs:           cfg.ClusterSize(),
		bt:           sim.Slot(cfg.BlockTime()),
		stage:        make([]partialStage, cfg.ClusterSize()),
		epochCursors: make([]int, cfg.ClusterSize()),
	}
	seeder := sim.NewRNG(cfg.Seed)
	for i := 0; i < n; i++ {
		p.rngs[i] = *seeder.Split()
		p.home[i] = int32(cfg.Home(i))
		if cfg.Home(i) < 0 {
			p.nextArrival[i] = 1 << 60 // idle processor: no traffic
			p.nextEvent[i] = p.nextArrival[i]
			continue
		}
		p.nextArrival[i] = sim.Slot(p.thinkTime(i))
		p.nextEvent[i] = p.nextArrival[i]
	}
	return p
}

// Instrument attaches registry metrics: completion/retry/latency and
// local-vs-remote counters plus an access-latency histogram (bin width
// β, so the first bin is the conflict-free service time). Call before
// running; a nil registry leaves the simulator unobserved.
func (p *Partial) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	p.mCompleted = r.Counter("partial_completed_total")
	p.mRetries = r.Counter("partial_retries_total")
	p.mLatency = r.Counter("partial_latency_cycles_total")
	p.mLocal = r.Counter("partial_local_accesses_total")
	p.mRemote = r.Counter("partial_remote_accesses_total")
	p.mLatHist = r.Histogram("partial_access_latency", int64(p.cfg.BlockTime()))
}

// RecordFlight attaches a flight recorder: each access spans from its
// issue to its retire, with a bank-enqueue event per port conflict and
// a bank-service event when a (module, set) port is acquired. Call
// before running; nil detaches.
func (p *Partial) RecordFlight(r *flight.Recorder) { p.flt = r }

func (p *Partial) thinkTime(proc int) int {
	r := p.cfg.AccessRate
	if r <= 0 {
		return 1 << 30
	}
	rng := &p.rngs[proc]
	t := 1
	for !rng.Bernoulli(r) {
		t++
		if t > 1<<20 {
			break
		}
	}
	return t
}

func (p *Partial) retryDelay(proc int) int {
	g := p.cfg.RetryMean
	if g == 1 {
		return 1
	}
	return 1 + p.rngs[proc].Intn(2*g-1)
}

// pickModule applies the locality model: probability λ of the HOME
// module (the placed job's data), otherwise uniform over the m−1 other
// modules. LocalAcc counts home-module accesses whether or not the home
// coincides with the processor's own cluster; the counts are staged in
// the processor's contention-set shard.
func (p *Partial) pickModule(proc int, st *partialStage) int {
	local := int(p.home[proc])
	if p.cfg.Modules == 1 || p.rngs[proc].Bernoulli(p.cfg.Locality) {
		st.localAcc++
		return local
	}
	st.remoteAcc++
	mod := p.rngs[proc].Intn(p.cfg.Modules - 1)
	if mod >= local {
		mod++
	}
	return mod
}

func (p *Partial) portIndex(mod, set int) int { return mod*p.cs + set }

// Tick implements sim.Ticker with a dense natural-order sweep over
// processors instead of SerialTick's shard-strided one. The sweeps are
// bit-identical: processor i touches only its own per-processor state,
// its contention set's ports, and its set's stage buffer, and ascending
// processor order preserves the ascending order WITHIN each set that
// the shard path produces — so every port outcome and every staged
// stream comes out the same. What changes is the memory traffic: the
// strided sweep pulls each cache line of the per-processor arrays once
// per contention set (ClusterSize times per slot); this one pulls it
// exactly once.
func (p *Partial) Tick(t sim.Slot, ph sim.Phase) {
	// Single range over nextEvent: natural processor order, no bounds
	// checks, and the contention set tracked by a wrapping counter
	// instead of a per-event modulo. The quiescence test lives in the
	// caller so a skipped processor costs one compare, not a call.
	cs, s := p.cs, 0
	for i, ne := range p.nextEvent {
		if t >= ne {
			p.tickProc(t, i, s, &p.stage[s])
		}
		if s++; s == cs {
			s = 0
		}
	}
	p.FinishShards(t, ph)
}

// PhaseMask implements sim.PhaseMasker: all the work is in PhaseIssue, so
// the engines skip the other three phases entirely.
func (p *Partial) PhaseMask() sim.PhaseMask { return sim.MaskOf(sim.PhaseIssue) }

// Horizon implements sim.Horizoner. A settled TickShard leaves every
// processor idle with an empty backlog, waiting with a wake slot, or in
// flight with a completion slot, so the next observable work is the
// earliest of those events or the next open-loop arrival. Think times
// and retry delays are drawn at event time from per-processor streams —
// no event, no draw — so a jump leaves every stream bit-identical.
func (p *Partial) Horizon(now sim.Slot) sim.Slot {
	h := sim.HorizonNone
	for _, v := range p.nextEvent {
		if v < h {
			h = v
		}
		if h <= now {
			return now
		}
	}
	if h < now {
		return now
	}
	return h
}

// Shards implements sim.Shardable: one shard per contention set. Two
// processors interact only through the busy-until state of (module, set)
// ports, and a processor in set s only ever touches set-s ports — so
// partitioning by ContentionSet puts every pair of potentially
// conflicting processors in the same shard.
func (p *Partial) Shards() int { return p.cfg.ClusterSize() }

// TickShard implements sim.Shardable: advance every processor of
// contention set s, in ascending processor order.
func (p *Partial) TickShard(t sim.Slot, ph sim.Phase, s int) {
	st := &p.stage[s]
	for i := s; i < p.cfg.Processors; i += p.cs {
		if t >= p.nextEvent[i] {
			p.tickProc(t, i, s, st)
		}
	}
}

// tickProc advances one processor at slot t, staging measurement deltas
// into its contention set's stage buffer st (set is i's contention set,
// already known to both callers). It is the shared body of the strided
// shard sweep (TickShard) and the dense serial sweep (Tick); callers
// guarantee t >= nextEvent[i] — quiescent processors are skipped at the
// call site.
func (p *Partial) tickProc(t sim.Slot, i, set int, st *partialStage) {
	for t >= p.nextArrival[i] {
		p.backlog[i].Push(p.nextArrival[i])
		p.nextArrival[i] += sim.Slot(p.thinkTime(i))
	}
	switch p.state[i] {
	case procInFlight:
		if t >= p.doneAt[i] {
			st.completed++
			st.totalLatency += int64(p.doneAt[i] - p.issuedAt[i])
			if p.mLatHist != nil {
				st.lats = append(st.lats, int64(p.doneAt[i]-p.issuedAt[i]))
			}
			if p.flt.Enabled() {
				st.flights = append(st.flights, flight.Event{
					ID: flight.ComposeID(i, p.issuedAt[i]), Slot: t,
					Stage: flight.StageRetire, Actor: int32(i),
					Arg: int64(p.doneAt[i] - p.issuedAt[i])})
			}
			p.state[i] = procIdle
		}
	case procWaiting:
		if t >= p.wakeAt[i] {
			p.attempt(t, i, set, st)
		}
	}
	if p.state[i] == procIdle && !p.backlog[i].Empty() {
		p.backlog[i].Pop()
		p.targetMod[i] = int32(p.pickModule(i, st))
		p.issuedAt[i] = t
		if p.flt.Enabled() {
			st.flights = append(st.flights, flight.Event{
				ID: flight.ComposeID(i, t), Slot: t,
				Stage: flight.StageIssue, Actor: int32(i),
				Arg: int64(p.targetMod[i])})
		}
		p.attempt(t, i, set, st)
	}
	p.nextEvent[i] = p.eventSlot(i)
}

// eventSlot computes processor i's earliest upcoming event. A settled
// processor is idle with an empty backlog (anything queued would have
// issued this slot), waiting with a wake slot, or in flight with a
// completion slot, so the earliest of those and the next open-loop
// arrival bounds its quiescence.
func (p *Partial) eventSlot(i int) sim.Slot {
	ne := p.nextArrival[i]
	switch p.state[i] {
	case procWaiting:
		if p.wakeAt[i] < ne {
			ne = p.wakeAt[i]
		}
	case procInFlight:
		if p.doneAt[i] < ne {
			ne = p.doneAt[i]
		}
	}
	return ne
}

// FinishShards implements sim.ShardFinalizer: fold the per-shard
// measurement deltas into the public counters in shard order.
func (p *Partial) FinishShards(t sim.Slot, ph sim.Phase) {
	for s := range p.stage {
		st := &p.stage[s]
		p.Completed += st.completed
		p.Retries += st.retries
		p.TotalLatency += st.totalLatency
		p.LocalAcc += st.localAcc
		p.RemoteAcc += st.remoteAcc
		p.mCompleted.Add(st.completed)
		p.mRetries.Add(st.retries)
		p.mLatency.Add(st.totalLatency)
		p.mLocal.Add(st.localAcc)
		p.mRemote.Add(st.remoteAcc)
		for _, l := range st.lats {
			p.mLatHist.Observe(l)
		}
		for _, ev := range st.flights {
			p.flt.Append(ev) //cfm:flight-ok fold drain; st.flights stays empty while recording is off
		}
		// Field-wise reset keeps the lats capacity for the next slot.
		st.completed, st.retries, st.totalLatency = 0, 0, 0
		st.localAcc, st.remoteAcc = 0, 0
		st.lats = st.lats[:0]
		st.flights = st.flights[:0]
	}
}

// EpochSafe implements sim.EpochSafeTicker: Partial has global shard
// closure, not just per-phase independence. A contention-set shard s
// touches only shard-owned state — processors i ≡ s (mod ClusterSize)
// and their RNG streams, the set-s ports (portIndex(·, s)), and
// stage[s] — in every phase of every slot, and Partial never parks, so
// the parallel engine may run shard s through a whole multi-slot
// episode before shard s′ has started it.
func (p *Partial) EpochSafe() bool { return true }

// FinishEpoch implements sim.EpochFinisher: one fold for the whole
// episode [from, to), leaving every sink byte-identical to per-slot
// FinishShards calls. Counters and the latency histogram are
// commutative, so a single fold in shard order suffices; the flight
// stream is order-sensitive, so the per-shard staged streams — each
// slot-nondecreasing, because a shard runs the episode's slots in
// order — are merged slot-major with per-shard cursors, reproducing
// the serial (slot, shard, emission) order exactly.
func (p *Partial) FinishEpoch(from, to sim.Slot) {
	for s := range p.stage {
		st := &p.stage[s]
		p.Completed += st.completed
		p.Retries += st.retries
		p.TotalLatency += st.totalLatency
		p.LocalAcc += st.localAcc
		p.RemoteAcc += st.remoteAcc
		p.mCompleted.Add(st.completed)
		p.mRetries.Add(st.retries)
		p.mLatency.Add(st.totalLatency)
		p.mLocal.Add(st.localAcc)
		p.mRemote.Add(st.remoteAcc)
		for _, l := range st.lats {
			p.mLatHist.Observe(l)
		}
		st.completed, st.retries, st.totalLatency = 0, 0, 0
		st.localAcc, st.remoteAcc = 0, 0
		st.lats = st.lats[:0]
	}
	if p.flt.Enabled() {
		for s := range p.epochCursors {
			p.epochCursors[s] = 0
		}
		for t := from; t < to; t++ {
			for s := range p.stage {
				evs := p.stage[s].flights
				c := p.epochCursors[s]
				for c < len(evs) && evs[c].Slot <= t {
					p.flt.Append(evs[c])
					c++
				}
				p.epochCursors[s] = c
			}
		}
	}
	for s := range p.stage {
		p.stage[s].flights = p.stage[s].flights[:0]
	}
}

func (p *Partial) attempt(t sim.Slot, proc, set int, st *partialStage) {
	port := int(p.targetMod[proc])*p.cs + set
	if t < p.ports[port] {
		st.retries++
		p.state[proc] = procWaiting
		p.wakeAt[proc] = t + sim.Slot(p.retryDelay(proc))
		if p.flt.Enabled() {
			st.flights = append(st.flights, flight.Event{
				ID: flight.ComposeID(proc, p.issuedAt[proc]), Slot: t,
				Stage: flight.StageBankEnqueue, Actor: int32(p.targetMod[proc]),
				Arg: int64(p.wakeAt[proc] - t)})
		}
		return
	}
	p.ports[port] = t + p.bt
	p.state[proc] = procInFlight
	p.doneAt[proc] = t + p.bt
	if p.flt.Enabled() {
		st.flights = append(st.flights, flight.Event{
			ID: flight.ComposeID(proc, p.issuedAt[proc]), Slot: t,
			Stage: flight.StageBankService, Actor: int32(p.targetMod[proc]),
			Arg: int64(p.bt)})
	}
}

// Efficiency returns β divided by the mean observed access time.
func (p *Partial) Efficiency() float64 {
	if p.Completed == 0 {
		return 1
	}
	return float64(p.cfg.BlockTime()) / (float64(p.TotalLatency) / float64(p.Completed))
}

// MeanLatency returns the mean access time in cycles.
func (p *Partial) MeanLatency() float64 {
	if p.Completed == 0 {
		return 0
	}
	return float64(p.TotalLatency) / float64(p.Completed)
}
