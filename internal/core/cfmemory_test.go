package core

import (
	"strings"
	"testing"

	"cfm/internal/memory"
	"cfm/internal/sim"
)

func cfg42() Config { return Config{Processors: 4, BankCycle: 2, WordWidth: 32} }
func cfg41() Config { return Config{Processors: 4, BankCycle: 1, WordWidth: 64} }

func TestCFMemoryReadRoundTrip(t *testing.T) {
	m := NewCFMemory(cfg42(), nil)
	want := memory.Block{10, 11, 12, 13, 14, 15, 16, 17}
	m.PokeBlock(3, want)

	clk := sim.NewClock()
	clk.Register(m)
	var got memory.Block
	m.StartRead(0, 0, 3, func(b memory.Block) { got = b })
	clk.Run(20)
	if got == nil {
		t.Fatal("read never completed")
	}
	if !got.Equal(want) {
		t.Fatalf("read %v, want %v", got, want)
	}
}

func TestCFMemoryWriteRoundTrip(t *testing.T) {
	m := NewCFMemory(cfg42(), nil)
	clk := sim.NewClock()
	clk.Register(m)
	data := memory.Block{1, 2, 3, 4, 5, 6, 7, 8}
	done := false
	m.StartWrite(0, 2, 5, data, func(memory.Block) { done = true })
	clk.Run(20)
	if !done {
		t.Fatal("write never completed")
	}
	if got := m.PeekBlock(5); !got.Equal(data) {
		t.Fatalf("memory holds %v, want %v", got, data)
	}
}

func TestCFMemoryLatencyIsBeta(t *testing.T) {
	// Every access completes in exactly β slots regardless of start slot
	// or processor — the non-stall property of §3.1.1.
	cfg := cfg42()
	for _, start := range []sim.Slot{0, 1, 3, 7, 11} {
		for p := 0; p < cfg.Processors; p++ {
			m := NewCFMemory(cfg, nil)
			clk := sim.NewClock()
			clk.Register(m)
			clk.Run(int64(start))
			var doneAt sim.Slot = -1
			m.StartRead(start, p, 0, func(memory.Block) { doneAt = clk.Now() })
			clk.Run(40)
			wantDone := start + sim.Slot(cfg.BlockTime()) - 1
			if doneAt != wantDone {
				t.Fatalf("P%d start %d: completed at %d, want %d (β=%d)",
					p, start, doneAt, wantDone, cfg.BlockTime())
			}
		}
	}
}

// TestCFMemoryAllProcessorsConcurrently is the headline property: all n
// processors issue block accesses at the same slot and none ever
// conflicts (a conflict panics inside CFMemory).
func TestCFMemoryAllProcessorsConcurrently(t *testing.T) {
	for _, cfg := range []Config{cfg41(), cfg42(), {Processors: 8, BankCycle: 2, WordWidth: 16}} {
		m := NewCFMemory(cfg, nil)
		clk := sim.NewClock()
		clk.Register(m)
		completions := 0
		for p := 0; p < cfg.Processors; p++ {
			m.StartRead(0, p, 0, func(memory.Block) { completions++ })
		}
		clk.Run(int64(cfg.BlockTime()) + 5)
		if completions != cfg.Processors {
			t.Fatalf("%v: %d completions, want %d", cfg, completions, cfg.Processors)
		}
	}
}

// TestCFMemoryStaggeredStartsNoConflict: accesses can start at ANY slot
// mid-flight of others (Fig. 3.3's example: a write starting at slot 2
// does not interfere with accesses started at slot 0).
func TestCFMemoryStaggeredStartsNoConflict(t *testing.T) {
	cfg := cfg41()
	m := NewCFMemory(cfg, nil)
	clk := sim.NewClock()
	clk.Register(m)
	done := 0
	count := func(memory.Block) { done++ }
	m.StartRead(0, 0, 0, count)
	m.StartRead(0, 1, 1, count)
	clk.Run(2)
	m.StartWrite(2, 3, 0, memory.Block{9, 9, 9, 9}, count)
	clk.Run(10)
	if done != 3 {
		t.Fatalf("%d completions, want 3", done)
	}
}

// TestCFMemorySaturationThroughput: with back-to-back accesses from all
// processors, each processor completes one block every b slots and bank
// utilization is 100% — effective bandwidth equals peak (§3.4.2).
func TestCFMemorySaturationThroughput(t *testing.T) {
	cfg := cfg42()
	m := NewCFMemory(cfg, nil)
	clk := sim.NewClock()
	// Re-issue as soon as the address path frees.
	issuer := sim.TickerFunc(func(tt sim.Slot, ph sim.Phase) {
		if ph != sim.PhaseIssue {
			return
		}
		for p := 0; p < cfg.Processors; p++ {
			if m.CanStart(tt, p) {
				m.StartRead(tt, p, 0, nil)
			}
		}
	})
	clk.Register(issuer)
	clk.RegisterPrio(m, 1) // memory ticks after the issuer
	const slots = 800
	clk.Run(slots)
	// Each processor should complete ~slots/b accesses.
	wantPerProc := slots/int64(cfg.Banks()) - 2
	if m.Completed < wantPerProc*int64(cfg.Processors) {
		t.Fatalf("completed %d accesses, want >= %d", m.Completed, wantPerProc*int64(cfg.Processors))
	}
	// Banks are fully pipelined: accesses per bank ≈ slots/c.
	for i := 0; i < cfg.Banks(); i++ {
		if acc := m.Bank(i).Accesses(); acc < slots/int64(cfg.BankCycle)-int64(cfg.Banks()) {
			t.Fatalf("bank %d served %d word accesses, want ~%d (full pipeline)",
				i, acc, slots/int64(cfg.BankCycle))
		}
	}
}

// TestCFMemoryInconsistencyFig41 reproduces Fig. 4.1: without address
// tracking, two simultaneous writes to the same block interleave so that
// the final block mixes both writers' data — exactly the motivating
// disaster for Chapter 4.
func TestCFMemoryInconsistencyFig41(t *testing.T) {
	cfg := cfg41()
	m := NewCFMemory(cfg, nil)
	clk := sim.NewClock()
	clk.Register(m)
	// P0 writes "1 2 3 4", P1 writes "11 12 13 14" (a b c d), same slot.
	m.StartWrite(0, 0, 0, memory.Block{1, 2, 3, 4}, nil)
	m.StartWrite(0, 1, 0, memory.Block{11, 12, 13, 14}, nil)
	clk.Run(10)
	got := m.PeekBlock(0)
	// P0 visits banks 0,1,2,3 at slots 0..3; P1 visits 1,2,3,0. P1's
	// writes to banks 1..3 are overwritten by P0 one slot later; P1
	// overwrites bank 0 at slot 3. Result: bank 0 from P1, rest from P0.
	want := memory.Block{11, 2, 3, 4}
	if !got.Equal(want) {
		t.Fatalf("block after conflicting writes = %v, want %v (Fig. 4.1)", got, want)
	}
}

func TestCFMemoryCanStartGating(t *testing.T) {
	cfg := cfg42()
	m := NewCFMemory(cfg, nil)
	clk := sim.NewClock()
	clk.Register(m)
	m.StartRead(0, 0, 0, nil)
	if m.CanStart(0, 0) {
		t.Fatal("CanStart true while access in flight")
	}
	clk.Run(int64(cfg.Banks())) // address path frees after b slots
	// Completion is at β−1 = b+c−2 > b−1 for c>1; but the address path is
	// free at slot b, so the *next* access may begin then even though the
	// final data words are in flight.
	clk.Run(int64(cfg.BankCycle))
	if !m.CanStart(clk.Now(), 0) {
		t.Fatalf("CanStart false at slot %d after address path freed", clk.Now())
	}
}

func TestCFMemoryDoubleStartPanics(t *testing.T) {
	m := NewCFMemory(cfg41(), nil)
	m.StartRead(0, 0, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second start while busy did not panic")
		}
	}()
	m.StartRead(0, 0, 1, nil)
}

func TestCFMemoryWriteWrongSizePanics(t *testing.T) {
	m := NewCFMemory(cfg41(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("short write block did not panic")
		}
	}()
	m.StartWrite(0, 0, 0, memory.Block{1}, nil)
}

func TestCFMemoryPokeWrongSizePanics(t *testing.T) {
	m := NewCFMemory(cfg41(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("short poke did not panic")
		}
	}()
	m.PokeBlock(0, memory.Block{1})
}

func TestCFMemoryTraceRecordsLifecycle(t *testing.T) {
	tr := sim.NewTrace()
	m := NewCFMemory(cfg41(), tr)
	clk := sim.NewClock()
	clk.Register(m)
	m.StartRead(0, 2, 7, nil)
	clk.Run(10)
	if !tr.Contains("P2", "issue read offset 7") {
		t.Fatalf("trace missing issue event:\n%s", tr)
	}
	if !tr.Contains("P2", "complete read offset 7") {
		t.Fatalf("trace missing completion event:\n%s", tr)
	}
}

func TestRenderTimingFig36(t *testing.T) {
	a := NewATSpace(cfg42())
	out := a.RenderTiming(0, 0)
	if !strings.Contains(out, "β=9") {
		t.Fatalf("diagram missing β: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // header + 8 banks
		t.Fatalf("diagram has %d lines, want 9:\n%s", len(lines), out)
	}
	// Bank 0: address at slot 0 (column 0), data at slot 1.
	if !strings.Contains(lines[1], "|AD") {
		t.Fatalf("bank 0 row %q should start with AD", lines[1])
	}
}

func TestRenderTimingC1CombinedMarker(t *testing.T) {
	a := NewATSpace(cfg41())
	out := a.RenderTiming(0, 0)
	if !strings.Contains(out, "B") {
		t.Fatalf("c=1 diagram should mark same-slot address+data with B:\n%s", out)
	}
}

func TestReadTimingEventCount(t *testing.T) {
	a := NewATSpace(cfg42())
	ev := a.ReadTiming(5, 1)
	if len(ev) != 2*a.Banks() {
		t.Fatalf("got %d events, want %d", len(ev), 2*a.Banks())
	}
}
