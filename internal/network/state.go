package network

import (
	"cfm/internal/sim"
)

// savePacket and loadPacket encode one in-network packet. The flight
// ID is part of the checkpoint (format v2): a restored packet must
// keep contributing hop events to the same span.
func savePacket(enc *sim.StateEncoder, p Packet) {
	enc.U64(p.ID)
	enc.Int(p.Dest)
	enc.Slot(p.Born)
	enc.Bool(p.Hot)
}

func loadPacket(dec *sim.StateDecoder) Packet {
	return Packet{ID: dec.U64(), Dest: dec.Int(), Born: dec.Slot(), Hot: dec.Bool()}
}

// SaveState implements sim.Stater for the buffered MIN: injection RNG
// streams, every source and switch-output queue, arbiter state, module
// busy clocks, the occupancy counts, and the public measurements. The
// topology and rates are configuration.
func (b *BufferedOmega) SaveState(enc *sim.StateEncoder) {
	enc.Int(len(b.rngs))
	for i := range b.rngs {
		enc.RNG(&b.rngs[i])
	}
	enc.Int(len(b.inject))
	for i := range b.inject {
		sim.SaveQueue(enc, &b.inject[i], savePacket)
	}
	// The queue slab and arbiter state are flat in memory but the
	// snapshot keeps the nested column/position framing of earlier
	// revisions, so the bytes are unchanged.
	cols, terms, spc := b.o.Columns(), b.cfg.Terminals, b.o.SwitchesPerColumn()
	enc.Int(cols)
	for j := 0; j < cols; j++ {
		enc.Int(terms)
		for i := 0; i < terms; i++ {
			sim.SaveQueue(enc, b.colQ(j, i), savePacket)
		}
	}
	enc.Int(cols)
	for j := 0; j < cols; j++ {
		enc.Int(spc)
		for sw := 0; sw < spc; sw++ {
			enc.Int(b.rr[j*spc+sw])
		}
	}
	sim.SaveSlots(enc, b.busy)
	enc.Int(b.injectCount)
	enc.Int(len(b.colCount))
	for _, v := range b.colCount {
		enc.Int(v)
	}
	enc.I64(b.Injected)
	enc.I64(b.DeliveredBg)
	enc.I64(b.DeliveredHot)
	enc.I64(b.LatencyBgTotal)
	enc.I64(b.LatencyHotTotal)
}

// LoadState implements sim.Stater.
func (b *BufferedOmega) LoadState(dec *sim.StateDecoder) {
	if n := dec.Count(); n != len(b.rngs) && dec.Err() == nil {
		dec.Failf("network: snapshot has %d RNG streams, network has %d", n, len(b.rngs))
		return
	}
	for i := range b.rngs {
		dec.RNG(&b.rngs[i])
	}
	if n := dec.Count(); n != len(b.inject) && dec.Err() == nil {
		dec.Failf("network: snapshot has %d source queues, network has %d", n, len(b.inject))
		return
	}
	for i := range b.inject {
		sim.LoadQueue(dec, &b.inject[i], loadPacket)
	}
	cols, terms, spc := b.o.Columns(), b.cfg.Terminals, b.o.SwitchesPerColumn()
	if n := dec.Count(); n != cols && dec.Err() == nil {
		dec.Failf("network: snapshot has %d columns, network has %d", n, cols)
		return
	}
	for j := 0; j < cols; j++ {
		if n := dec.Count(); n != terms && dec.Err() == nil {
			dec.Failf("network: snapshot column %d has %d queues, network has %d", j, n, terms)
			return
		}
		for i := 0; i < terms; i++ {
			sim.LoadQueue(dec, b.colQ(j, i), loadPacket)
		}
	}
	if n := dec.Count(); n != cols && dec.Err() == nil {
		dec.Failf("network: snapshot has %d arbiter columns, network has %d", n, cols)
		return
	}
	for j := 0; j < cols; j++ {
		if n := dec.Count(); n != spc && dec.Err() == nil {
			dec.Failf("network: snapshot arbiter column %d has %d switches, network has %d", j, n, spc)
			return
		}
		for sw := 0; sw < spc; sw++ {
			b.rr[j*spc+sw] = dec.Int()
		}
	}
	sim.LoadSlots(dec, b.busy)
	b.injectCount = dec.Int()
	if n := dec.Count(); n != len(b.colCount) && dec.Err() == nil {
		dec.Failf("network: snapshot has %d occupancy counts, network has %d", n, len(b.colCount))
		return
	}
	for i := range b.colCount {
		b.colCount[i] = dec.Int()
	}
	b.Injected = dec.I64()
	b.DeliveredBg = dec.I64()
	b.DeliveredHot = dec.I64()
	b.LatencyBgTotal = dec.I64()
	b.LatencyHotTotal = dec.I64()
}

// SaveState implements sim.Stater for circuit-switched occupancy: the
// hold clock of every switch output line plus the path statistics.
func (c *Circuit) SaveState(enc *sim.StateEncoder) {
	enc.Int(len(c.heldUntil))
	for j := range c.heldUntil {
		enc.Int(len(c.heldUntil[j]))
		for _, u := range c.heldUntil[j] {
			enc.I64(u)
		}
	}
	enc.I64(c.Established)
	enc.I64(c.Blocked)
}

// LoadState implements sim.Stater.
func (c *Circuit) LoadState(dec *sim.StateDecoder) {
	if n := dec.Count(); n != len(c.heldUntil) && dec.Err() == nil {
		dec.Failf("network: snapshot has %d columns, circuit has %d", n, len(c.heldUntil))
		return
	}
	for j := range c.heldUntil {
		if n := dec.Count(); n != len(c.heldUntil[j]) && dec.Err() == nil {
			dec.Failf("network: snapshot column %d has %d lines, circuit has %d", j, n, len(c.heldUntil[j]))
			return
		}
		for i := range c.heldUntil[j] {
			c.heldUntil[j][i] = dec.I64()
		}
	}
	c.Established = dec.I64()
	c.Blocked = dec.I64()
}
