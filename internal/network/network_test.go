package network

import (
	"testing"
	"testing/quick"
)

func TestLog2(t *testing.T) {
	good := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 64: 6, 1024: 10}
	for n, want := range good {
		k, err := Log2(n)
		if err != nil {
			t.Errorf("Log2(%d) error: %v", n, err)
		}
		if k != want {
			t.Errorf("Log2(%d) = %d, want %d", n, k, want)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 12, 100} {
		if _, err := Log2(n); err == nil {
			t.Errorf("Log2(%d) accepted non-power-of-two", n)
		}
	}
}

func TestShuffleUnshuffleInverse(t *testing.T) {
	f := func(xRaw uint8, kRaw uint8) bool {
		k := 1 + int(kRaw)%10
		x := int(xRaw) % (1 << k)
		return unshuffle(shuffle(x, k), k) == x && shuffle(unshuffle(x, k), k) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleIsRotateLeft(t *testing.T) {
	// 3-bit: 0b011 -> 0b110, 0b100 -> 0b001.
	if shuffle(0b011, 3) != 0b110 {
		t.Errorf("shuffle(011) = %03b", shuffle(0b011, 3))
	}
	if shuffle(0b100, 3) != 0b001 {
		t.Errorf("shuffle(100) = %03b", shuffle(0b100, 3))
	}
}

func TestSyncSwitchPermutation(t *testing.T) {
	s := NewSyncSwitch(4)
	// Fig. 3.4: at slot t, input i connects to output (t+i) mod 4.
	for tt := int64(0); tt < 8; tt++ {
		for i := 0; i < 4; i++ {
			want := (int(tt) + i) % 4
			if got := s.Out(tt, i); got != want {
				t.Fatalf("Out(%d,%d) = %d, want %d", tt, i, got, want)
			}
		}
	}
}

func TestSyncSwitchInInvertsOut(t *testing.T) {
	s := NewSyncSwitch(8)
	for tt := int64(0); tt < 16; tt++ {
		for i := 0; i < 8; i++ {
			if got := s.In(tt, s.Out(tt, i)); got != i {
				t.Fatalf("In(Out(%d,%d)) = %d, want %d", tt, i, got, i)
			}
		}
	}
}

func TestSyncSwitchPermutationIsBijective(t *testing.T) {
	s := NewSyncSwitch(8)
	for tt := int64(0); tt < 8; tt++ {
		seen := make(map[int]bool)
		for _, o := range s.Permutation(tt) {
			if seen[o] {
				t.Fatalf("slot %d: output %d used twice", tt, o)
			}
			seen[o] = true
		}
	}
}

func TestSyncSwitchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"size0":   func() { NewSyncSwitch(0) },
		"in-low":  func() { NewSyncSwitch(4).Out(0, -1) },
		"in-high": func() { NewSyncSwitch(4).Out(0, 4) },
		"out-bad": func() { NewSyncSwitch(4).In(0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOmegaConstruction(t *testing.T) {
	o := MustOmega(8)
	if o.Size() != 8 || o.Columns() != 3 || o.SwitchesPerColumn() != 4 {
		t.Fatalf("8x8 omega: size=%d cols=%d spc=%d", o.Size(), o.Columns(), o.SwitchesPerColumn())
	}
	if _, err := NewOmega(6); err == nil {
		t.Fatal("NewOmega(6) accepted")
	}
	if _, err := NewOmega(1); err == nil {
		t.Fatal("NewOmega(1) accepted")
	}
}

func TestOmegaRouteReachesDestination(t *testing.T) {
	// Route already panics internally if the invariant breaks; exercise
	// every src/dst pair for several sizes.
	for _, n := range []int{2, 4, 8, 16, 32} {
		o := MustOmega(n)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				hops := o.Route(s, d)
				if len(hops) != o.Columns() {
					t.Fatalf("n=%d route %d→%d has %d hops, want %d", n, s, d, len(hops), o.Columns())
				}
			}
		}
	}
}

func TestOmegaRouteHopFieldsConsistent(t *testing.T) {
	o := MustOmega(16)
	f := func(sRaw, dRaw uint8) bool {
		s, d := int(sRaw)%16, int(dRaw)%16
		for _, h := range o.Route(s, d) {
			if h.InPort < 0 || h.InPort > 1 || h.OutPort < 0 || h.OutPort > 1 {
				return false
			}
			if h.Switch < 0 || h.Switch >= o.SwitchesPerColumn() {
				return false
			}
			if h.OutPos() != h.Switch<<1|h.OutPort {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOmegaIdentityPermutationAllStraight(t *testing.T) {
	o := MustOmega(8)
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	st, err := o.PermutationStates(perm)
	if err != nil {
		t.Fatalf("identity unrealizable: %v", err)
	}
	for j := range st {
		for s, v := range st[j] {
			if v != Straight {
				t.Fatalf("identity: column %d switch %d = %v, want straight", j, s, v)
			}
		}
	}
}

func TestOmegaPermutationConflictDetected(t *testing.T) {
	// The "bit reversal on 8" permutation is a classic omega blocker;
	// find any permutation that conflicts to prove detection works.
	o := MustOmega(8)
	perm := []int{0, 4, 2, 6, 1, 5, 3, 7} // bit-reversal
	if _, err := o.PermutationStates(perm); err == nil {
		t.Skip("bit-reversal unexpectedly realizable under this convention")
	}
}

func TestOmegaPermutationStatesBadLength(t *testing.T) {
	o := MustOmega(8)
	if _, err := o.PermutationStates([]int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
}

// TestSyncOmegaRealizesSlotPermutations is the Lawrie property (§3.2.1):
// for all t, the permutation p → (t+p) mod N is realizable with no switch
// conflicts, for every power-of-two network size we care about.
func TestSyncOmegaRealizesSlotPermutations(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		if _, err := NewSyncOmega(n); err != nil {
			t.Errorf("N=%d: %v", n, err)
		}
	}
}

func TestSyncOmegaOutMatchesSpec(t *testing.T) {
	so := MustSyncOmega(8)
	for tt := int64(0); tt < 16; tt++ {
		for p := 0; p < 8; p++ {
			want := (int(tt) + p) % 8
			if got := so.Out(tt, p); got != want {
				t.Fatalf("Out(%d,%d) = %d, want %d", tt, p, got, want)
			}
		}
	}
}

func TestSyncOmegaNegativeSlot(t *testing.T) {
	so := MustSyncOmega(8)
	if got := so.Out(-3, 1); got != (8-3+1)%8 {
		t.Fatalf("Out(-3,1) = %d, want %d", got, (8-3+1)%8)
	}
	_ = so.States(-3) // must not panic
}

// TestSyncOmegaTable34 reproduces the dissertation's Table 3.4: the
// states of the 12 switches of an 8×8 synchronous omega network at each
// of the 8 slots of a time period.
func TestSyncOmegaTable34(t *testing.T) {
	so := MustSyncOmega(8)
	want := [8][12]SwitchState{
		// col0 sw0..3    col1 sw0..3   col2 sw0..3
		{0, 0, 0, 0 /**/, 0, 0, 0, 0 /**/, 0, 0, 0, 0}, // slot 0
		{0, 0, 0, 1 /**/, 0, 0, 1, 1 /**/, 1, 1, 1, 1}, // slot 1
		{0, 0, 1, 1 /**/, 1, 1, 1, 1 /**/, 0, 0, 0, 0}, // slot 2
		{0, 1, 1, 1 /**/, 1, 1, 0, 0 /**/, 1, 1, 1, 1}, // slot 3
		{1, 1, 1, 1 /**/, 0, 0, 0, 0 /**/, 0, 0, 0, 0}, // slot 4
		{1, 1, 1, 0 /**/, 0, 0, 1, 1 /**/, 1, 1, 1, 1}, // slot 5
		{1, 1, 0, 0 /**/, 1, 1, 1, 1 /**/, 0, 0, 0, 0}, // slot 6
		{1, 0, 0, 0 /**/, 1, 1, 0, 0 /**/, 1, 1, 1, 1}, // slot 7
	}
	rows := so.StateTable()
	for slot := 0; slot < 8; slot++ {
		for i := 0; i < 12; i++ {
			if rows[slot][i] != want[slot][i] {
				t.Errorf("slot %d entry %d (col %d sw %d) = %v, want %v",
					slot, i, i/4, i%4, rows[slot][i], want[slot][i])
			}
		}
	}
}

func TestSyncOmegaPeriodicity(t *testing.T) {
	so := MustSyncOmega(16)
	for p := 0; p < 16; p++ {
		if so.Out(3, p) != so.Out(3+16, p) {
			t.Fatalf("period != N at p=%d", p)
		}
	}
}

func TestCircuitEstablishAndBlock(t *testing.T) {
	o := MustOmega(8)
	c := NewCircuit(o)
	if !c.TryEstablish(0, 0, 5, 10) {
		t.Fatal("first path blocked on empty network")
	}
	// Same path again must be blocked while held.
	if c.TryEstablish(1, 0, 5, 10) {
		t.Fatal("identical concurrent path accepted")
	}
	// After the hold expires it must succeed.
	if !c.TryEstablish(10, 0, 5, 10) {
		t.Fatal("path still blocked after hold expired")
	}
	if c.Established != 2 || c.Blocked != 1 {
		t.Fatalf("stats: est=%d blk=%d, want 2,1", c.Established, c.Blocked)
	}
}

func TestCircuitDisjointPathsCoexist(t *testing.T) {
	o := MustOmega(8)
	c := NewCircuit(o)
	// 0→0 and 7→7 share no switch outputs under identity-style routes.
	if !c.TryEstablish(0, 0, 0, 100) {
		t.Fatal("0→0 blocked")
	}
	if !c.TryEstablish(0, 7, 7, 100) {
		t.Fatal("7→7 blocked despite disjoint path")
	}
}

func TestCircuitSameDestinationBlocks(t *testing.T) {
	o := MustOmega(8)
	c := NewCircuit(o)
	if !c.TryEstablish(0, 0, 3, 100) {
		t.Fatal("first path blocked")
	}
	// Any other source to the same destination shares at least the final
	// output line.
	if c.TryEstablish(0, 4, 3, 100) {
		t.Fatal("second path to same destination accepted")
	}
}

func TestCircuitFailedAttemptHoldsNothing(t *testing.T) {
	o := MustOmega(8)
	c := NewCircuit(o)
	c.TryEstablish(0, 0, 3, 100)
	before := c.BusyOutputs(0)
	c.TryEstablish(0, 4, 3, 100) // blocked
	if c.BusyOutputs(0) != before {
		t.Fatal("blocked attempt left outputs held")
	}
}

func TestCircuitBusyOutputs(t *testing.T) {
	o := MustOmega(8)
	c := NewCircuit(o)
	c.TryEstablish(0, 2, 6, 5)
	if got := c.BusyOutputs(0); got != o.Columns() {
		t.Fatalf("BusyOutputs = %d, want %d (one per column)", got, o.Columns())
	}
	if got := c.BusyOutputs(5); got != 0 {
		t.Fatalf("BusyOutputs after expiry = %d, want 0", got)
	}
}

func TestPartialOmegaShape(t *testing.T) {
	// Table 3.5: a 64-bank system with 2×2 switches.
	rows := []struct {
		circuit, modules, banksPer int
	}{
		{0, 1, 64},
		{1, 2, 32},
		{2, 4, 16},
		{3, 8, 8},
		{4, 16, 4},
		{5, 32, 2},
		{6, 64, 1},
	}
	for _, r := range rows {
		po := MustPartialOmega(64, r.circuit)
		if po.Modules() != r.modules {
			t.Errorf("cc=%d: Modules = %d, want %d", r.circuit, po.Modules(), r.modules)
		}
		if po.BanksPerModule() != r.banksPer {
			t.Errorf("cc=%d: BanksPerModule = %d, want %d", r.circuit, po.BanksPerModule(), r.banksPer)
		}
		if po.ClockColumns() != 6-r.circuit {
			t.Errorf("cc=%d: ClockColumns = %d, want %d", r.circuit, po.ClockColumns(), 6-r.circuit)
		}
	}
}

func TestPartialOmegaModuleGrouping(t *testing.T) {
	po := MustPartialOmega(8, 2) // 4 modules × 2 banks (Fig. 3.11a)
	wantModule := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for bank, want := range wantModule {
		if got := po.Module(bank); got != want {
			t.Errorf("Module(%d) = %d, want %d", bank, got, want)
		}
	}
}

func TestPartialOmegaContentionSetsFig311a(t *testing.T) {
	// Fig. 3.11a: 4 two-bank modules; processors {0,2,4,6} and {1,3,5,7}
	// form the two contention sets.
	po := MustPartialOmega(8, 2)
	if po.ContentionSets() != 2 {
		t.Fatalf("ContentionSets = %d, want 2", po.ContentionSets())
	}
	for p := 0; p < 8; p++ {
		if got := po.ContentionSet(p); got != p%2 {
			t.Errorf("ContentionSet(%d) = %d, want %d", p, got, p%2)
		}
	}
}

func TestPartialOmegaContentionSetsFig311b(t *testing.T) {
	// Fig. 3.11b: 2 four-bank modules; contention sets (0,4),(1,5),(2,6),(3,7).
	po := MustPartialOmega(8, 1)
	if po.ContentionSets() != 4 {
		t.Fatalf("ContentionSets = %d, want 4", po.ContentionSets())
	}
	groups := map[int][]int{}
	for p := 0; p < 8; p++ {
		s := po.ContentionSet(p)
		groups[s] = append(groups[s], p)
	}
	want := map[int][]int{0: {0, 4}, 1: {1, 5}, 2: {2, 6}, 3: {3, 7}}
	for s, ps := range want {
		got := groups[s]
		if len(got) != len(ps) {
			t.Fatalf("set %d = %v, want %v", s, got, ps)
		}
		for i := range ps {
			if got[i] != ps[i] {
				t.Fatalf("set %d = %v, want %v", s, got, ps)
			}
		}
	}
}

func TestPartialOmegaConflictFree(t *testing.T) {
	po := MustPartialOmega(8, 2)
	// Different modules: always conflict-free.
	if !po.ConflictFree(0, 0, 2, 1) {
		t.Fatal("different modules reported conflicting")
	}
	// Same module, different contention sets: conflict-free.
	if !po.ConflictFree(0, 1, 1, 1) {
		t.Fatal("same module, different sets reported conflicting")
	}
	// Same module, same contention set: may conflict.
	if po.ConflictFree(0, 1, 2, 1) {
		t.Fatal("same module, same set reported conflict-free")
	}
}

func TestPartialOmegaArrivalPortsDistinguishSets(t *testing.T) {
	// Processors in different contention sets must arrive at different
	// ports of any given module; same set ⇒ same port.
	for _, cc := range []int{1, 2} {
		po := MustPartialOmega(8, cc)
		for mod := 0; mod < po.Modules(); mod++ {
			portOf := map[int]int{} // contention set → port
			for p := 0; p < 8; p++ {
				set := po.ContentionSet(p)
				port := po.ArrivalPort(p, mod)
				if prev, ok := portOf[set]; ok {
					if prev != port {
						t.Fatalf("cc=%d mod=%d: set %d arrives at ports %d and %d", cc, mod, set, prev, port)
					}
				} else {
					portOf[set] = port
				}
			}
			seen := map[int]bool{}
			for _, port := range portOf {
				if seen[port] {
					t.Fatalf("cc=%d mod=%d: two sets share a port", cc, mod)
				}
				seen[port] = true
			}
		}
	}
}

func TestPartialOmegaFullySyncIsCFM(t *testing.T) {
	po := MustPartialOmega(64, 0)
	if po.Modules() != 1 || po.BanksPerModule() != 64 {
		t.Fatal("cc=0 should be one 64-bank conflict-free module")
	}
	// Everything in one module, 64 contention sets of one processor each:
	// all pairs conflict-free.
	for p := 0; p < 64; p++ {
		for q := p + 1; q < 64; q++ {
			if !po.ConflictFree(p, 0, q, 0) {
				t.Fatalf("CFM mode: processors %d,%d conflict", p, q)
			}
		}
	}
}

func TestHeadersFig39(t *testing.T) {
	// Fig. 3.9: a synchronous omega network's request header carries only
	// the offset; a circuit-switching network also carries routing bits.
	const wordsPerBank = 1024 // 10 offset bits
	sync := MustPartialOmega(64, 0).RequestHeader(wordsPerBank)
	if sync.ModuleBits != 0 || sync.OffsetBits != 10 || sync.Bits() != 10 {
		t.Fatalf("sync header = %+v", sync)
	}
	conv := ConventionalHeader(64, wordsPerBank)
	if conv.ModuleBits != 6 || conv.Bits() != 16 {
		t.Fatalf("conventional header = %+v", conv)
	}
	if conv.Bits() <= sync.Bits() {
		t.Fatal("synchronous header not smaller than conventional")
	}
}

func TestHeadersFig310PartialSplit(t *testing.T) {
	// Fig. 3.10: with 4 two-bank modules the header carries 2 module bits;
	// with 2 four-bank modules it carries 1.
	const wordsPerBank = 256
	a := MustPartialOmega(8, 2).RequestHeader(wordsPerBank)
	if a.ModuleBits != 2 {
		t.Fatalf("4-module header ModuleBits = %d, want 2", a.ModuleBits)
	}
	b := MustPartialOmega(8, 1).RequestHeader(wordsPerBank)
	if b.ModuleBits != 1 {
		t.Fatalf("2-module header ModuleBits = %d, want 1", b.ModuleBits)
	}
	if a.Bits() != b.Bits()+1 {
		t.Fatalf("header sizes %d,%d do not differ by the module bit", a.Bits(), b.Bits())
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPartialOmegaPanics(t *testing.T) {
	po := MustPartialOmega(8, 2)
	for name, fn := range map[string]func(){
		"module":  func() { po.Module(8) },
		"cs":      func() { po.ContentionSet(-1) },
		"arr":     func() { po.ArrivalPort(0, 4) },
		"bitsFor": func() { bitsFor(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	if _, err := NewPartialOmega(8, 4); err == nil {
		t.Error("cc > log2(N) accepted")
	}
	if _, err := NewPartialOmega(7, 1); err == nil {
		t.Error("non-power-of-two size accepted")
	}
}

func TestSwitchStateString(t *testing.T) {
	if Straight.String() != "0" || Interchange.String() != "1" {
		t.Fatal("switch state strings wrong")
	}
}

func TestSyncSwitchSize(t *testing.T) {
	if NewSyncSwitch(6).Size() != 6 {
		t.Fatal("Size wrong")
	}
}

func TestRouteStates(t *testing.T) {
	o := MustOmega(8)
	// Identity route 3→3 is straight everywhere.
	for _, st := range o.RouteStates(3, 3) {
		if st != Straight {
			t.Fatal("identity route not straight")
		}
	}
	// 0→7 must cross at every column (all destination bits are 1, all
	// positions arrive on port 0 after each shuffle of a zero-prefix).
	states := o.RouteStates(0, 7)
	if len(states) != 3 {
		t.Fatalf("%d states", len(states))
	}
	for i, st := range states {
		if st != Interchange {
			t.Fatalf("column %d of 0→7 = %v, want interchange", i, st)
		}
	}
}

func TestPartialOmegaAccessors(t *testing.T) {
	po := MustPartialOmega(16, 2)
	if po.Size() != 16 || po.CircuitColumns() != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestMustConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"omega":   func() { MustOmega(3) },
		"sync":    func() { MustSyncOmega(5) },
		"partial": func() { MustPartialOmega(8, 9) },
		"convHdr": func() { ConventionalHeader(7, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRoutePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustOmega(8).Route(0, 8)
}
