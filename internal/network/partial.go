package network

import "fmt"

// PartialOmega is the partially synchronous omega network of §3.2.2: the
// first CircuitColumns columns are ordinary circuit-switched crossbars
// routed by the memory module number, and the remaining ClockColumns
// columns are clock-driven synchronous switches that select the bank
// within the module by time slot.
//
// With N banks and k = log2(N) total columns, choosing cc circuit-switched
// columns yields 2^cc conflict-free memory modules of 2^(k−cc) banks each
// (Table 3.5: cc = 0 is the fully conflict-free CFM; cc = k is a
// conventional word-interleaved system).
type PartialOmega struct {
	o              *Omega
	circuitColumns int
}

// NewPartialOmega builds a partially synchronous omega network over N
// banks with the given number of circuit-switched columns (0 ≤ cc ≤
// log2 N).
func NewPartialOmega(n, circuitColumns int) (*PartialOmega, error) {
	o, err := NewOmega(n)
	if err != nil {
		return nil, err
	}
	if circuitColumns < 0 || circuitColumns > o.Columns() {
		return nil, fmt.Errorf("network: %d circuit columns out of [0,%d]", circuitColumns, o.Columns())
	}
	return &PartialOmega{o: o, circuitColumns: circuitColumns}, nil
}

// MustPartialOmega is NewPartialOmega for compile-time-known parameters.
func MustPartialOmega(n, circuitColumns int) *PartialOmega {
	po, err := NewPartialOmega(n, circuitColumns)
	if err != nil {
		panic(err)
	}
	return po
}

// Size returns the number of banks N.
func (p *PartialOmega) Size() int { return p.o.Size() }

// CircuitColumns returns the number of circuit-switched columns.
func (p *PartialOmega) CircuitColumns() int { return p.circuitColumns }

// ClockColumns returns the number of clock-driven columns.
func (p *PartialOmega) ClockColumns() int { return p.o.Columns() - p.circuitColumns }

// Modules returns the number of conflict-free memory modules, 2^cc.
func (p *PartialOmega) Modules() int { return 1 << p.circuitColumns }

// BanksPerModule returns the module (and block) size in banks/words.
func (p *PartialOmega) BanksPerModule() int { return p.o.Size() / p.Modules() }

// Module returns the module containing a bank: destination-tag routing
// consumes the high-order bits first, so a module is a contiguous group
// of banks identified by the top cc bits of the bank number.
func (p *PartialOmega) Module(bank int) int {
	if bank < 0 || bank >= p.o.Size() {
		panic(fmt.Sprintf("network: bank %d out of range [0,%d)", bank, p.o.Size()))
	}
	return bank >> p.ClockColumns()
}

// ContentionSet returns the contention set of a processor: the group of
// processors that reach every module through the same final clock-driven
// port and therefore share AT-space divisions. From Fig. 3.11, processors
// p and q are in the same set iff p ≡ q (mod banks-per-module).
func (p *PartialOmega) ContentionSet(proc int) int {
	if proc < 0 || proc >= p.o.Size() {
		panic(fmt.Sprintf("network: processor %d out of range [0,%d)", proc, p.o.Size()))
	}
	return proc % p.BanksPerModule()
}

// ContentionSets returns the number of distinct contention sets
// (= banks per module).
func (p *PartialOmega) ContentionSets() int { return p.BanksPerModule() }

// ArrivalPort returns the line position at which processor proc's route
// into module mod leaves the last circuit-switched column (equivalently,
// enters the module's clock-driven sub-network), numbered 0..s−1 within
// the module, where s is the module size. Processors with equal arrival
// ports at every module form a contention set.
func (p *PartialOmega) ArrivalPort(proc, mod int) int {
	if mod < 0 || mod >= p.Modules() {
		panic(fmt.Sprintf("network: module %d out of range [0,%d)", mod, p.Modules()))
	}
	// Route to any bank of the module; the first cc hops are determined
	// entirely by the module bits.
	bank := mod << p.ClockColumns()
	pos := proc
	k := p.o.Columns()
	for j := 0; j < p.circuitColumns; j++ {
		pos = shuffle(pos, k)
		out := (bank >> (k - 1 - j)) & 1
		pos = pos&^1 | out
	}
	// After the circuit prefix, the position's low cc bits hold the module
	// number and its high (k−cc) bits are the bits the clock-driven suffix
	// will successively rotate down and consume — they are the input port
	// of the module's synchronous sub-network.
	return pos >> p.circuitColumns
}

// ConflictFree reports whether two processors can access modules m1 and
// m2 concurrently without any possibility of contention: always, unless
// they target the same module from the same contention set.
func (p *PartialOmega) ConflictFree(p1, m1, p2, m2 int) bool {
	if m1 != m2 {
		return true
	}
	return p.ContentionSet(p1) != p.ContentionSet(p2)
}

// Header describes the message header a memory access request must carry
// on a given network variant (Figs. 3.9 and 3.10): circuit-switched
// columns need the module number for routing; the offset is always
// carried; the bank number is never carried on clock-driven columns — the
// system clock selects it.
type Header struct {
	ModuleBits int // routing information for circuit-switched columns
	OffsetBits int // address offset within a bank
	BankBits   int // explicit bank number (conventional networks only)
}

// Bits returns the total header size.
func (h Header) Bits() int { return h.ModuleBits + h.OffsetBits + h.BankBits }

// RequestHeader returns the header needed on this partially synchronous
// network for a memory space of wordsPerBank offsets per bank.
func (p *PartialOmega) RequestHeader(wordsPerBank int) Header {
	return Header{
		ModuleBits: p.circuitColumns,
		OffsetBits: bitsFor(wordsPerBank),
		BankBits:   0, // selected by the system clock
	}
}

// ConventionalHeader returns the header a fully circuit-switched omega
// network of the same size would need: module bits for routing plus bank
// bits, since nothing is clock-selected.
func ConventionalHeader(banks, wordsPerBank int) Header {
	k, err := Log2(banks)
	if err != nil {
		panic(err)
	}
	return Header{ModuleBits: k, OffsetBits: bitsFor(wordsPerBank), BankBits: 0}
	// In a conventional word-interleaved MIN the full bank address is the
	// routing tag, so ModuleBits covers it and no separate BankBits are
	// needed; k bits versus the synchronous network's zero is the saving.
}

// bitsFor returns ceil(log2(n)) for n ≥ 1.
func bitsFor(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("network: bitsFor(%d)", n))
	}
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
