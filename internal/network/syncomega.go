package network

import "fmt"

// SyncOmega is the synchronous omega network of §3.2.1: an omega network
// whose switches are all driven by the system clock so that, at time slot
// t, input port p is connected to output port (t+p) mod N — the same state
// transition pattern as a single N×N synchronous switch box, with neither
// setup time nor propagation delay, and provably no switch contention.
type SyncOmega struct {
	o *Omega
	// states[t][column][switch] for t in one time period of N slots.
	states [][][]SwitchState
}

// NewSyncOmega builds the synchronous omega network and precomputes the
// switch states for all N slots of the time period. Construction fails
// only if some slot permutation were unrealizable, which Lawrie's theorem
// rules out; an error therefore indicates a topology bug.
func NewSyncOmega(n int) (*SyncOmega, error) {
	o, err := NewOmega(n)
	if err != nil {
		return nil, err
	}
	so := &SyncOmega{o: o, states: make([][][]SwitchState, n)}
	for t := 0; t < n; t++ {
		perm := make([]int, n)
		for p := range perm {
			perm[p] = (t + p) % n
		}
		st, err := o.PermutationStates(perm)
		if err != nil {
			return nil, fmt.Errorf("network: slot %d permutation unrealizable: %w", t, err)
		}
		so.states[t] = st
	}
	return so, nil
}

// MustSyncOmega is NewSyncOmega for compile-time-known sizes.
func MustSyncOmega(n int) *SyncOmega {
	so, err := NewSyncOmega(n)
	if err != nil {
		panic(err)
	}
	return so
}

// Size returns N.
func (s *SyncOmega) Size() int { return s.o.Size() }

// Columns returns log2(N).
func (s *SyncOmega) Columns() int { return s.o.Columns() }

// Out returns the output terminal connected to input terminal p at slot
// t: (t+p) mod N, by construction.
func (s *SyncOmega) Out(t int64, p int) int {
	n := int64(s.o.Size())
	tt := t % n
	if tt < 0 {
		tt += n
	}
	return int((tt + int64(p)) % n)
}

// States returns the state of every switch at slot t, indexed
// [column][switch]. The returned slices are shared; do not modify.
func (s *SyncOmega) States(t int64) [][]SwitchState {
	n := int64(s.o.Size())
	tt := t % n
	if tt < 0 {
		tt += n
	}
	return s.states[tt]
}

// StateTable renders the per-slot switch states in the layout of the
// dissertation's Table 3.4: one row per slot, columns grouped by network
// column then switch index.
func (s *SyncOmega) StateTable() [][]SwitchState {
	rows := make([][]SwitchState, s.o.Size())
	for t := range rows {
		var row []SwitchState
		for _, col := range s.states[t] {
			row = append(row, col...)
		}
		rows[t] = row
	}
	return rows
}
