package network

import (
	"fmt"

	"cfm/internal/metrics"
)

// Omega is the topology and routing engine of an N×N omega network
// (Fig. 3.7): k = log2(N) columns of N/2 two-by-two switches with a
// perfect shuffle before each column and destination-tag routing.
//
// The struct itself is stateless topology; circuit-switched occupancy is
// tracked by Circuit, and clock-driven operation by SyncOmega.
type Omega struct {
	n int // terminals per side
	k int // columns
}

// NewOmega builds an N×N omega network. N must be a power of two ≥ 2.
func NewOmega(n int) (*Omega, error) {
	k, err := Log2(n)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("network: omega needs N >= 2, got %d", n)
	}
	return &Omega{n: n, k: k}, nil
}

// MustOmega is NewOmega for compile-time-known sizes.
func MustOmega(n int) *Omega {
	o, err := NewOmega(n)
	if err != nil {
		panic(err)
	}
	return o
}

// Size returns N, the number of terminals per side.
func (o *Omega) Size() int { return o.n }

// Columns returns k = log2(N), the number of switch columns.
func (o *Omega) Columns() int { return o.k }

// SwitchesPerColumn returns N/2.
func (o *Omega) SwitchesPerColumn() int { return o.n / 2 }

// Hop is one step of a route: the switch visited in one column and the
// ports used through it.
type Hop struct {
	Column  int
	Switch  int // switch index within the column (0..N/2−1)
	InPort  int // 0 or 1
	OutPort int // 0 or 1
}

// OutPos returns the line position this hop's output occupies (the input
// to the next column's shuffle).
func (h Hop) OutPos() int { return h.Switch<<1 | h.OutPort }

// Route computes the unique path from source src to destination dst using
// destination-tag routing: at column j the route exits on the port given
// by bit (k−1−j) of dst.
func (o *Omega) Route(src, dst int) []Hop {
	if src < 0 || src >= o.n || dst < 0 || dst >= o.n {
		panic(fmt.Sprintf("network: route %d→%d out of range [0,%d)", src, dst, o.n))
	}
	hops := make([]Hop, o.k)
	pos := src
	for j := 0; j < o.k; j++ {
		pos = shuffle(pos, o.k)
		out := (dst >> (o.k - 1 - j)) & 1
		hops[j] = Hop{Column: j, Switch: pos >> 1, InPort: pos & 1, OutPort: out}
		pos = pos&^1 | out
	}
	if pos != dst {
		panic(fmt.Sprintf("network: routing invariant broken: %d→%d ended at %d", src, dst, pos))
	}
	return hops
}

// RouteStates returns, for each column, the switch state a route requires
// of the switch it traverses: Straight when it enters and leaves on the
// same port number, Interchange otherwise.
func (o *Omega) RouteStates(src, dst int) []SwitchState {
	hops := o.Route(src, dst)
	states := make([]SwitchState, len(hops))
	for i, h := range hops {
		if h.InPort == h.OutPort {
			states[i] = Straight
		} else {
			states[i] = Interchange
		}
	}
	return states
}

// PermutationStates attempts to realize the permutation perm (perm[src] =
// dst) on the network simultaneously. It returns the state of every
// switch, indexed [column][switch], or an error naming the first switch
// that would need to be in two states at once (a switch conflict).
//
// Lawrie showed the slot permutations used by the synchronous omega
// network are always realizable; tests verify that via this function.
func (o *Omega) PermutationStates(perm []int) ([][]SwitchState, error) {
	if len(perm) != o.n {
		return nil, fmt.Errorf("network: permutation has %d entries, want %d", len(perm), o.n)
	}
	const unset = -1
	states := make([][]int, o.k)
	for j := range states {
		states[j] = make([]int, o.SwitchesPerColumn())
		for s := range states[j] {
			states[j][s] = unset
		}
	}
	for src, dst := range perm {
		for _, h := range o.Route(src, dst) {
			var st SwitchState
			if h.InPort == h.OutPort {
				st = Straight
			} else {
				st = Interchange
			}
			switch prev := states[h.Column][h.Switch]; prev {
			case unset:
				states[h.Column][h.Switch] = int(st)
			case int(st):
				// Consistent with the earlier route through this switch.
			default:
				return nil, fmt.Errorf("network: switch conflict at column %d switch %d routing %d→%d",
					h.Column, h.Switch, src, dst)
			}
		}
	}
	out := make([][]SwitchState, o.k)
	for j := range out {
		out[j] = make([]SwitchState, o.SwitchesPerColumn())
		for s := range out[j] {
			if states[j][s] == unset {
				out[j][s] = Straight // unused switches idle in the straight state
			} else {
				out[j][s] = SwitchState(states[j][s])
			}
		}
	}
	return out, nil
}

// Circuit tracks circuit-switched occupancy of an omega network, as in
// the BBN Butterfly: a memory access holds its entire path for its
// duration, and a new path that needs any already-held switch output is
// blocked (aborted for later retry rather than buffered, §2.1.2).
type Circuit struct {
	o *Omega
	// heldUntil[column][outputPosition] is the first slot at which the
	// output line is free again; 0 means never held.
	heldUntil [][]int64

	// Statistics.
	Established int64
	Blocked     int64

	// Registry handles (nil when unobserved).
	mEstablished *metrics.Counter
	mBlocked     *metrics.Counter
}

// NewCircuit returns an empty circuit tracker for the network.
func NewCircuit(o *Omega) *Circuit {
	h := make([][]int64, o.k)
	for j := range h {
		h[j] = make([]int64, o.n)
	}
	return &Circuit{o: o, heldUntil: h}
}

// Instrument attaches registry counters for established and blocked
// paths. Callers drive Circuit from serial contexts, so direct adds are
// deterministic.
func (c *Circuit) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	c.mEstablished = r.Counter("circuit_established_total")
	c.mBlocked = r.Counter("circuit_blocked_total")
}

// TryEstablish attempts to set up the path src→dst at slot t, holding it
// for hold slots. It reports whether the path was free; on failure
// nothing is held (abort-and-retry, not buffering).
func (c *Circuit) TryEstablish(t int64, src, dst, hold int) bool {
	hops := c.o.Route(src, dst)
	for _, h := range hops {
		if t < c.heldUntil[h.Column][h.OutPos()] {
			c.Blocked++
			c.mBlocked.Inc()
			return false
		}
	}
	until := t + int64(hold)
	for _, h := range hops {
		c.heldUntil[h.Column][h.OutPos()] = until
	}
	c.Established++
	c.mEstablished.Inc()
	return true
}

// EarliestRelease returns the first slot > t at which some held output
// line frees, or −1 when nothing is held beyond t. Circuit is passive —
// drivers that retry blocked paths fold this into their sim.Horizoner
// answer: a path blocked at t cannot succeed before the earliest
// release, so slots in between are observable no-ops for the retry.
func (c *Circuit) EarliestRelease(t int64) int64 {
	earliest := int64(-1)
	for j := range c.heldUntil {
		for _, u := range c.heldUntil[j] {
			if u > t && (earliest == -1 || u < earliest) {
				earliest = u
			}
		}
	}
	return earliest
}

// BusyOutputs counts output lines still held at slot t (a congestion
// metric for tests).
func (c *Circuit) BusyOutputs(t int64) int {
	busy := 0
	for j := range c.heldUntil {
		for _, u := range c.heldUntil[j] {
			if t < u {
				busy++
			}
		}
	}
	return busy
}
