package network

import (
	"fmt"

	"cfm/internal/flight"
	"cfm/internal/metrics"
	"cfm/internal/sim"
)

// Packet is one memory access request traversing a buffered MIN.
type Packet struct {
	// ID is the packet's flight-recorder identity, composed at injection
	// from the source terminal and birth slot. It rides the packet (and
	// the checkpoint format) because hops happen columns away from the
	// injection site.
	ID   uint64
	Dest int
	Born sim.Slot
	Hot  bool // part of the hot-spot traffic, for separate accounting
}

// BufferedConfig parameterizes the buffered packet-switched MIN used to
// reproduce the tree-saturation effect of Fig. 2.1.
type BufferedConfig struct {
	Terminals   int     // N processors and N memory modules
	QueueCap    int     // per-switch-output queue capacity
	ServiceTime int     // module service time per request, CPU cycles
	Rate        float64 // per-processor injection rate, requests/cycle
	HotFraction float64 // fraction of requests directed at HotModule
	HotModule   int
	Seed        uint64
}

// Validate reports a descriptive error for an unusable configuration.
func (c BufferedConfig) Validate() error {
	if _, err := Log2(c.Terminals); err != nil {
		return err
	}
	switch {
	case c.QueueCap < 1:
		return fmt.Errorf("network: queue capacity %d < 1", c.QueueCap)
	case c.ServiceTime < 1:
		return fmt.Errorf("network: service time %d < 1", c.ServiceTime)
	case c.Rate < 0 || c.Rate > 1:
		return fmt.Errorf("network: rate %v out of [0,1]", c.Rate)
	case c.HotFraction < 0 || c.HotFraction > 1:
		return fmt.Errorf("network: hot fraction %v out of [0,1]", c.HotFraction)
	case c.HotModule < 0 || c.HotModule >= c.Terminals:
		return fmt.Errorf("network: hot module %d out of range", c.HotModule)
	}
	return nil
}

// BufferedOmega simulates a packet-switched omega network with finite
// per-output queues at every switch, the architecture in which a hot spot
// causes tree saturation (§2.1, Fig. 2.1): the queues feeding the hot
// memory module fill, back-pressure blocks the switches behind them, and
// eventually traffic to *other* modules stalls in the saturated tree.
// It implements sim.Ticker.
//
// At Rate > 0 every terminal draws an injection Bernoulli every live
// slot, so Horizon pins now: a skipped slot would skip draws and shift
// the streams.
//
//cfm:rng=slot
//cfm:soa
type BufferedOmega struct {
	cfg BufferedConfig
	o   *Omega
	// rngs holds one independent injection stream per processor (split
	// from the config seed), so terminal shards draw independently. The
	// streams are stored inline (sim.RNG is a single word), so the
	// injection sweep reads one flat array instead of chasing pointers.
	rngs []sim.RNG

	inject []sim.Queue[Packet] //cfm:soa-ok FIFO headers are flat; buffers are checkpointed state
	// q holds every switch-output queue in one column-major slab:
	// q[j*Terminals+i] is output position i of column j. The flat layout
	// keeps the column sweep on consecutive queue headers instead of
	// hopping between per-column allocations; the checkpoint still emits
	// the nested column/position counts, so snapshot bytes are unchanged.
	q []sim.Queue[Packet] //cfm:soa-ok FIFO headers are flat; buffers are checkpointed state
	// rr is the per-switch round-robin arbiter state, flattened the same
	// way: rr[j*SwitchesPerColumn+sw].
	rr   []int
	busy []sim.Slot // per-module busy-until

	// Occupancy counts form the column sweep's active set: a column whose
	// upstream (the previous column, or the source queues for column 0)
	// holds no packets cannot move anything and is skipped. The counts are
	// mutated only in serial context — tryMove during the sweep, and the
	// FinishShards fold, which turns the per-shard injected/delivered
	// deltas into source/last-column adjustments.
	injectCount int
	colCount    []int

	// stage buffers per-terminal measurement deltas, folded by
	// FinishShards.
	//cfm:no-save fold scratch, drained by FinishShards before any checkpoint boundary
	stage []bufferedStage //cfm:soa-ok fold scratch, one element per terminal shard

	// Measurements, split by traffic class.
	Injected        int64
	DeliveredBg     int64
	DeliveredHot    int64
	LatencyBgTotal  int64
	LatencyHotTotal int64

	// Registry handles (nil when unobserved). Counters are added to and
	// gauges set from FinishShards — the single-threaded column sweep —
	// so snapshots are deterministic at any worker count. The per-stage
	// occupancy gauges drive the network-occupancy observatory view.
	mInjected   *metrics.Counter
	mDelivBg    *metrics.Counter
	mDelivHot   *metrics.Counter
	mLatBg      *metrics.Counter
	mLatHot     *metrics.Counter
	mBlocked    *metrics.Counter
	mQueued     *metrics.Gauge
	mBacklog    *metrics.Gauge
	mStageQueue []*metrics.Gauge //cfm:soa-ok cold observation handles, set once per settle
	mStageFull  []*metrics.Gauge //cfm:soa-ok cold observation handles, set once per settle

	// Flight recorder (nil when unobserved). Inject and retire events
	// happen in terminal shards and are staged; hop events are emitted
	// directly from the column sweep, which runs in FinishShards.
	flt *flight.Recorder
}

// bufferedStage buffers one terminal shard's measurement deltas.
type bufferedStage struct {
	injected        int64
	deliveredBg     int64
	deliveredHot    int64
	latencyBgTotal  int64
	latencyHotTotal int64
	flights         []flight.Event
}

// NewBufferedOmega builds the simulator. It panics on invalid
// configuration.
func NewBufferedOmega(cfg BufferedConfig) *BufferedOmega {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	o := MustOmega(cfg.Terminals)
	b := &BufferedOmega{
		cfg:      cfg,
		o:        o,
		rngs:     make([]sim.RNG, cfg.Terminals),
		inject:   make([]sim.Queue[Packet], cfg.Terminals),
		q:        make([]sim.Queue[Packet], o.Columns()*cfg.Terminals),
		rr:       make([]int, o.Columns()*o.SwitchesPerColumn()),
		busy:     make([]sim.Slot, cfg.Terminals),
		colCount: make([]int, o.Columns()),
		stage:    make([]bufferedStage, cfg.Terminals),
	}
	seeder := sim.NewRNG(cfg.Seed)
	for p := range b.rngs {
		b.rngs[p] = *seeder.Split()
	}
	return b
}

// colQ returns the switch-output queue at position i of column j.
func (b *BufferedOmega) colQ(j, i int) *sim.Queue[Packet] {
	return &b.q[j*b.cfg.Terminals+i]
}

// Instrument attaches registry metrics: injection/delivery/latency
// counters split by traffic class, a blocked-move counter (back-pressure
// events), and occupancy gauges overall and per network stage. Call
// before running; a nil registry leaves the network unobserved.
func (b *BufferedOmega) Instrument(r *metrics.Registry) {
	if r == nil {
		return
	}
	b.mInjected = r.Counter("net_injected_total")
	b.mDelivBg = r.Counter("net_delivered_bg_total")
	b.mDelivHot = r.Counter("net_delivered_hot_total")
	b.mLatBg = r.Counter("net_latency_bg_cycles_total")
	b.mLatHot = r.Counter("net_latency_hot_cycles_total")
	b.mBlocked = r.Counter("net_blocked_moves_total")
	b.mQueued = r.Gauge("net_queued_packets")
	b.mBacklog = r.Gauge("net_source_backlog")
	cols := b.o.Columns()
	b.mStageQueue = make([]*metrics.Gauge, cols)
	b.mStageFull = make([]*metrics.Gauge, cols)
	for j := 0; j < cols; j++ {
		b.mStageQueue[j] = r.Gauge(fmt.Sprintf(`net_stage_queued{stage="%d"}`, j))
		b.mStageFull[j] = r.Gauge(fmt.Sprintf(`net_stage_full_queues{stage="%d"}`, j))
	}
}

// RecordFlight attaches a flight recorder: each packet spans from its
// net-inject to its retire at the destination module, with one hop
// event per column it clears. Call before running; nil detaches.
func (b *BufferedOmega) RecordFlight(r *flight.Recorder) { b.flt = r }

// Tick implements sim.Ticker by delegating to the shard path, so the
// serial and parallel engines execute identical code. Injection happens
// in PhaseIssue; movement (sinks first, then columns back to front, so
// freed space propagates upstream within the slot like combinational
// back-pressure) happens in PhaseTransfer.
func (b *BufferedOmega) Tick(t sim.Slot, ph sim.Phase) { sim.SerialTick(b, t, ph) }

// PhaseMask implements sim.PhaseMasker: the network is idle during
// PhaseConnect and PhaseUpdate.
func (b *BufferedOmega) PhaseMask() sim.PhaseMask {
	return sim.MaskOf(sim.PhaseIssue, sim.PhaseTransfer)
}

// Horizon implements sim.Horizoner. At Rate > 0 every terminal draws an
// injection Bernoulli every slot, so skipping would desynchronize the
// streams: the horizon is pinned to now. At Rate 0 (replay/drain runs)
// Bernoulli(0) consumes no state, so the network is quiescent exactly
// when no packet sits in a source queue or switch column.
func (b *BufferedOmega) Horizon(now sim.Slot) sim.Slot {
	if b.cfg.Rate > 0 {
		return now
	}
	if b.injectCount > 0 {
		return now
	}
	for _, n := range b.colCount {
		if n > 0 {
			return now
		}
	}
	return sim.HorizonNone
}

// Shards implements sim.Shardable: one shard per terminal. Injection
// touches only source queue p and its private stream; sink draining
// touches only module m's busy state and last-column queue. The
// store-and-forward column sweep, which couples every queue through
// back-pressure, stays single-threaded in FinishShards.
func (b *BufferedOmega) Shards() int { return b.cfg.Terminals }

// TickShard implements sim.Shardable.
func (b *BufferedOmega) TickShard(t sim.Slot, ph sim.Phase, s int) {
	switch ph {
	case sim.PhaseIssue:
		b.injectNew(t, s)
	case sim.PhaseTransfer:
		b.drainSink(t, s)
	}
}

// FinishShards implements sim.ShardFinalizer: fold the per-terminal
// measurement deltas and, in PhaseTransfer, run the sequential column
// sweep that the drained sinks just made room for.
func (b *BufferedOmega) FinishShards(t sim.Slot, ph sim.Phase) {
	last := b.o.Columns() - 1
	for s := range b.stage {
		st := &b.stage[s]
		b.Injected += st.injected
		b.DeliveredBg += st.deliveredBg
		b.DeliveredHot += st.deliveredHot
		b.LatencyBgTotal += st.latencyBgTotal
		b.LatencyHotTotal += st.latencyHotTotal
		b.injectCount += int(st.injected)
		b.colCount[last] -= int(st.deliveredBg + st.deliveredHot)
		b.mInjected.Add(st.injected)
		b.mDelivBg.Add(st.deliveredBg)
		b.mDelivHot.Add(st.deliveredHot)
		b.mLatBg.Add(st.latencyBgTotal)
		b.mLatHot.Add(st.latencyHotTotal)
		for _, ev := range st.flights {
			b.flt.Append(ev) //cfm:flight-ok fold drain; st.flights stays empty while recording is off
		}
		// Field-wise reset keeps the flights capacity for the next slot.
		st.injected, st.deliveredBg, st.deliveredHot = 0, 0, 0
		st.latencyBgTotal, st.latencyHotTotal = 0, 0
		st.flights = st.flights[:0]
	}
	if ph == sim.PhaseTransfer {
		for j := last; j >= 0; j-- {
			// Active set: a column with an empty upstream has no candidate
			// moves — nothing to arbitrate, block, or count.
			upstream := b.injectCount
			if j > 0 {
				upstream = b.colCount[j-1]
			}
			if upstream == 0 {
				continue
			}
			b.advanceColumn(t, j)
		}
		if b.mQueued != nil {
			b.mQueued.Set(int64(b.QueuedPackets()))
			b.mBacklog.Set(int64(b.SourceBacklog()))
			full := b.FullQueues()
			for j := range b.mStageQueue {
				n := 0
				for i := 0; i < b.cfg.Terminals; i++ {
					n += b.colQ(j, i).Len()
				}
				b.mStageQueue[j].Set(int64(n))
				b.mStageFull[j].Set(int64(full[j]))
			}
		}
	}
}

// injectNew generates terminal p's new request for this slot, if any.
func (b *BufferedOmega) injectNew(t sim.Slot, p int) {
	rng := &b.rngs[p]
	if !rng.Bernoulli(b.cfg.Rate) {
		return
	}
	pk := Packet{ID: flight.ComposeID(p, t), Born: t}
	if rng.Bernoulli(b.cfg.HotFraction) {
		pk.Dest = b.cfg.HotModule
		pk.Hot = true
	} else {
		pk.Dest = rng.Intn(b.cfg.Terminals)
	}
	b.inject[p].Push(pk)
	b.stage[p].injected++
	if b.flt.Enabled() {
		b.stage[p].flights = append(b.stage[p].flights, flight.Event{
			ID: pk.ID, Slot: t, Stage: flight.StageNetInject,
			Actor: int32(p), Arg: int64(pk.Dest)})
	}
}

// drainSink lets memory module m, if idle, consume the packet at the
// head of its last-column queue.
func (b *BufferedOmega) drainSink(t sim.Slot, m int) {
	sink := b.colQ(b.o.Columns()-1, m)
	if t < b.busy[m] || sink.Empty() {
		return
	}
	pk := sink.Pop()
	b.busy[m] = t + sim.Slot(b.cfg.ServiceTime)
	lat := int64(t + sim.Slot(b.cfg.ServiceTime) - pk.Born)
	st := &b.stage[m]
	if pk.Hot {
		st.deliveredHot++
		st.latencyHotTotal += lat
	} else {
		st.deliveredBg++
		st.latencyBgTotal += lat
	}
	if b.flt.Enabled() {
		st.flights = append(st.flights,
			flight.Event{ID: pk.ID, Slot: t, Stage: flight.StageBankService,
				Actor: int32(m), Arg: int64(b.cfg.ServiceTime)},
			flight.Event{ID: pk.ID, Slot: t, Stage: flight.StageRetire,
				Actor: int32(m), Arg: lat})
	}
}

// upstreamHead returns the queue feeding input line pos of column j, or
// nil if that queue is empty. The caller peeks the head and pops it only
// when the move succeeds — no per-call closures.
func (b *BufferedOmega) upstreamHead(j, pos int) *sim.Queue[Packet] {
	src := unshuffle(pos, b.o.Columns())
	var qp *sim.Queue[Packet]
	if j == 0 {
		qp = &b.inject[src]
	} else {
		qp = b.colQ(j-1, src)
	}
	if qp.Empty() {
		return nil
	}
	return qp
}

// advanceColumn moves up to one packet through each switch output of
// column j, honouring queue capacities and a per-switch round-robin
// arbiter when both inputs contend for the same output. It runs inside
// FinishShards' sequential sweep, so the hop events tryMove emits land
// in the recorder in deterministic order.
func (b *BufferedOmega) advanceColumn(t sim.Slot, j int) {
	k := b.o.Columns()
	type cand struct {
		src *sim.Queue[Packet]
		out int
	}
	for sw := 0; sw < b.o.SwitchesPerColumn(); sw++ {
		var cands [2]cand
		nc := 0
		for in := 0; in < 2; in++ {
			if src := b.upstreamHead(j, sw<<1|in); src != nil {
				out := sw<<1 | (src.Peek().Dest>>(k-1-j))&1
				cands[nc] = cand{src: src, out: out}
				nc++
			}
		}
		switch nc {
		case 0:
			continue
		case 1:
			b.tryMove(t, j, cands[0].out, cands[0].src)
		case 2:
			if cands[0].out != cands[1].out {
				b.tryMove(t, j, cands[0].out, cands[0].src)
				b.tryMove(t, j, cands[1].out, cands[1].src)
				continue
			}
			// Contention for one output: alternate which input wins.
			arb := j*b.o.SwitchesPerColumn() + sw
			first := b.rr[arb] & 1
			b.rr[arb]++
			if b.tryMove(t, j, cands[first].out, cands[first].src) {
				continue
			}
			b.tryMove(t, j, cands[1-first].out, cands[1-first].src)
		}
	}
}

// tryMove pushes src's head packet into q[j][out] if there is room,
// consuming it from its source queue and updating the occupancy counts.
// It reports whether the move happened.
func (b *BufferedOmega) tryMove(t sim.Slot, j, out int, src *sim.Queue[Packet]) bool {
	dst := b.colQ(j, out)
	if dst.Len() >= b.cfg.QueueCap {
		b.mBlocked.Inc() // runs inside FinishShards' sweep: deterministic
		return false
	}
	pk := src.Pop()
	dst.Push(pk)
	if j == 0 {
		b.injectCount--
	} else {
		b.colCount[j-1]--
	}
	b.colCount[j]++
	if b.flt.Enabled() {
		b.flt.Emit(pk.ID, t, flight.StageHop, int32(j), int64(out))
	}
	return true
}

// FullQueues returns, per column, how many switch-output queues are at
// capacity — the footprint of the saturation tree.
func (b *BufferedOmega) FullQueues() []int {
	out := make([]int, b.o.Columns())
	for j := range out {
		for i := 0; i < b.cfg.Terminals; i++ {
			if b.colQ(j, i).Len() >= b.cfg.QueueCap {
				out[j]++
			}
		}
	}
	return out
}

// QueuedPackets returns the total number of packets buffered inside the
// network (excluding source queues).
func (b *BufferedOmega) QueuedPackets() int {
	total := 0
	for i := range b.q {
		total += b.q[i].Len()
	}
	return total
}

// SourceBacklog returns the total number of packets still waiting at the
// processors' injection queues.
func (b *BufferedOmega) SourceBacklog() int {
	total := 0
	for i := range b.inject {
		total += b.inject[i].Len()
	}
	return total
}

// MeanLatencyBg returns the mean delivered latency of background
// (non-hot-spot) packets, the quantity tree saturation destroys.
func (b *BufferedOmega) MeanLatencyBg() float64 {
	if b.DeliveredBg == 0 {
		return 0
	}
	return float64(b.LatencyBgTotal) / float64(b.DeliveredBg)
}

// MeanLatencyHot returns the mean delivered latency of hot-spot packets.
func (b *BufferedOmega) MeanLatencyHot() float64 {
	if b.DeliveredHot == 0 {
		return 0
	}
	return float64(b.LatencyHotTotal) / float64(b.DeliveredHot)
}
