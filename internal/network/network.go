// Package network models the interconnection fabrics of the dissertation:
//
//   - SyncSwitch: the n×n synchronous switch box of Fig. 3.4, whose
//     connection state is driven purely by the system clock
//     (input i → output (t+i) mod n at slot t);
//   - Omega: the multistage omega network of Fig. 3.7 with destination-tag
//     routing, usable in circuit-switched mode (path holding and blocking,
//     as in the BBN Butterfly) — the conventional comparator;
//   - SyncOmega: the synchronous omega network of §3.2.1, realizing the
//     slot permutation with provably zero switch conflicts (Table 3.4,
//     Fig. 3.8);
//   - PartialOmega: the partially synchronous omega of §3.2.2, with the
//     first k columns circuit-switched by module number and the remaining
//     columns clock-driven (Figs. 3.10–3.11, Table 3.5);
//   - BufferedOmega: a packet-switched MIN with finite switch queues used
//     to reproduce the tree-saturation effect of Fig. 2.1.
//
// All omega variants share the same topology: N = 2^k terminals, k columns
// of N/2 two-by-two switches, with a perfect shuffle preceding every
// column. Destination-tag routing uses bit (k−1−j) of the destination at
// column j.
package network

import "fmt"

// SwitchState is the connection state of a 2×2 switch box.
type SwitchState int

// The two states of a 2×2 switch (Fig. 3.7): straight passes input i to
// output i; interchange crosses them.
const (
	Straight    SwitchState = 0
	Interchange SwitchState = 1
)

// String returns "0" or "1" to match the dissertation's Table 3.4.
func (s SwitchState) String() string {
	if s == Straight {
		return "0"
	}
	return "1"
}

// Log2 returns k such that n == 2^k, or an error if n is not a power of
// two (omega networks require power-of-two sizes).
func Log2(n int) (int, error) {
	if n < 1 || n&(n-1) != 0 {
		return 0, fmt.Errorf("network: size %d is not a positive power of two", n)
	}
	k := 0
	for 1<<k < n {
		k++
	}
	return k, nil
}

// shuffle is the perfect-shuffle permutation on k-bit line numbers:
// rotate left by one bit.
func shuffle(x, k int) int {
	msb := (x >> (k - 1)) & 1
	return ((x << 1) | msb) & (1<<k - 1)
}

// unshuffle is the inverse perfect shuffle: rotate right by one bit.
func unshuffle(x, k int) int {
	lsb := x & 1
	return (x >> 1) | (lsb << (k - 1))
}

// SyncSwitch is the n×n synchronous switch box of Fig. 3.4. It needs no
// routing information: at time slot t, input port i is connected to output
// port (t+i) mod n, driven by the system clock. Every n slots it completes
// one fully deterministic time period.
type SyncSwitch struct {
	n int
}

// NewSyncSwitch returns a synchronous switch with n ports per side.
func NewSyncSwitch(n int) *SyncSwitch {
	if n < 1 {
		panic(fmt.Sprintf("network: switch size %d < 1", n))
	}
	return &SyncSwitch{n: n}
}

// Size returns the number of ports per side.
func (s *SyncSwitch) Size() int { return s.n }

// Out returns the output port connected to input port in at slot t.
func (s *SyncSwitch) Out(t int64, in int) int {
	if in < 0 || in >= s.n {
		panic(fmt.Sprintf("network: input port %d out of range [0,%d)", in, s.n))
	}
	return int((t%int64(s.n) + int64(in)) % int64(s.n))
}

// In returns the input port connected to output port out at slot t (the
// inverse of Out).
func (s *SyncSwitch) In(t int64, out int) int {
	if out < 0 || out >= s.n {
		panic(fmt.Sprintf("network: output port %d out of range [0,%d)", out, s.n))
	}
	v := (int64(out) - t%int64(s.n)) % int64(s.n)
	if v < 0 {
		v += int64(s.n)
	}
	return int(v)
}

// Permutation returns the full input→output mapping at slot t.
func (s *SyncSwitch) Permutation(t int64) []int {
	p := make([]int, s.n)
	for i := range p {
		p[i] = s.Out(t, i)
	}
	return p
}
