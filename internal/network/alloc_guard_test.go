package network

import (
	"testing"

	"cfm/internal/sim"
)

// TestOmegaColumnSweepAllocFree guards the zero-allocation steady state
// of the buffered omega's column sweep: once every switch queue has
// grown to its working depth, moving packets is pure index arithmetic on
// the reusable ring storage.
func TestOmegaColumnSweepAllocFree(t *testing.T) {
	b := NewBufferedOmega(BufferedConfig{
		Terminals: 16, QueueCap: 4, ServiceTime: 2, Rate: 0.05,
		HotFraction: 0.1, Seed: 11,
	})
	clk := sim.NewClock()
	clk.Register(b)
	clk.Run(5000) // warm-up: reach every queue's steady-state depth
	if avg := testing.AllocsPerRun(20, func() { clk.Run(100) }); avg != 0 {
		t.Fatalf("column sweep allocates %v times per 100 slots, want 0", avg)
	}
	if b.DeliveredBg+b.DeliveredHot == 0 {
		t.Fatal("no traffic delivered: guard is vacuous")
	}
}
