package network

import (
	"testing"

	"cfm/internal/sim"
)

func runBuffered(t *testing.T, cfg BufferedConfig, slots int64) *BufferedOmega {
	t.Helper()
	b := NewBufferedOmega(cfg)
	clk := sim.NewClock()
	clk.Register(b)
	clk.Run(slots)
	return b
}

func TestBufferedConfigValidate(t *testing.T) {
	good := BufferedConfig{Terminals: 16, QueueCap: 4, ServiceTime: 2, Rate: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []BufferedConfig{
		{Terminals: 6, QueueCap: 1, ServiceTime: 1},
		{Terminals: 8, QueueCap: 0, ServiceTime: 1},
		{Terminals: 8, QueueCap: 1, ServiceTime: 0},
		{Terminals: 8, QueueCap: 1, ServiceTime: 1, Rate: 2},
		{Terminals: 8, QueueCap: 1, ServiceTime: 1, HotFraction: -0.1},
		{Terminals: 8, QueueCap: 1, ServiceTime: 1, HotModule: 8},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBufferedDeliversAllTraffic(t *testing.T) {
	b := runBuffered(t, BufferedConfig{
		Terminals: 8, QueueCap: 4, ServiceTime: 1, Rate: 0.05, Seed: 1,
	}, 20000)
	delivered := b.DeliveredBg + b.DeliveredHot
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	inFlight := int64(b.QueuedPackets() + b.SourceBacklog())
	if delivered+inFlight != b.Injected {
		t.Fatalf("conservation broken: injected %d, delivered %d, in flight %d",
			b.Injected, delivered, inFlight)
	}
}

func TestBufferedLowLoadLatencyNearMinimum(t *testing.T) {
	// At very light uniform load, latency ≈ columns + service time.
	b := runBuffered(t, BufferedConfig{
		Terminals: 16, QueueCap: 8, ServiceTime: 1, Rate: 0.005, Seed: 2,
	}, 50000)
	minLat := float64(4 + 1) // 4 columns + 1 service
	got := b.MeanLatencyBg()
	if got < minLat {
		t.Fatalf("latency %v below physical minimum %v", got, minLat)
	}
	if got > 2*minLat {
		t.Fatalf("light-load latency %v far above minimum %v", got, minLat)
	}
}

// TestBufferedTreeSaturation is the Fig. 2.1 phenomenon: adding hot-spot
// traffic to a buffered MIN massively inflates the latency of BACKGROUND
// packets (those not going to the hot module), because the saturation
// tree rooted at the hot sink blocks unrelated traffic.
func TestBufferedTreeSaturation(t *testing.T) {
	base := BufferedConfig{
		Terminals: 16, QueueCap: 4, ServiceTime: 2, Rate: 0.1, Seed: 3,
	}
	cold := runBuffered(t, base, 30000)

	hot := base
	hot.HotFraction = 0.3
	hotRun := runBuffered(t, hot, 30000)

	coldLat, hotLat := cold.MeanLatencyBg(), hotRun.MeanLatencyBg()
	if hotLat < 2*coldLat {
		t.Fatalf("background latency with hot spot %v, without %v: no saturation effect", hotLat, coldLat)
	}
	// The saturation tree should reach back from the last column: full
	// queues in more than one column.
	full := hotRun.FullQueues()
	cols := 0
	for _, f := range full {
		if f > 0 {
			cols++
		}
	}
	if cols < 2 {
		t.Fatalf("full queues per column %v: saturation did not spread as a tree", full)
	}
}

func TestBufferedSaturationGrowsWithHotFraction(t *testing.T) {
	base := BufferedConfig{
		Terminals: 16, QueueCap: 4, ServiceTime: 2, Rate: 0.1, Seed: 4,
	}
	var prev float64
	for _, h := range []float64{0, 0.15, 0.4} {
		cfg := base
		cfg.HotFraction = h
		lat := runBuffered(t, cfg, 30000).MeanLatencyBg()
		if lat < prev {
			t.Fatalf("background latency decreased from %v to %v as hot fraction rose to %v", prev, lat, h)
		}
		prev = lat
	}
}

func TestBufferedZeroRate(t *testing.T) {
	b := runBuffered(t, BufferedConfig{
		Terminals: 8, QueueCap: 2, ServiceTime: 1, Rate: 0, Seed: 5,
	}, 1000)
	if b.Injected != 0 || b.QueuedPackets() != 0 {
		t.Fatal("traffic appeared at rate 0")
	}
	if b.MeanLatencyBg() != 0 || b.MeanLatencyHot() != 0 {
		t.Fatal("latency nonzero with no deliveries")
	}
}

func TestBufferedDeterministicBySeed(t *testing.T) {
	cfg := BufferedConfig{Terminals: 8, QueueCap: 2, ServiceTime: 2, Rate: 0.1, HotFraction: 0.2, Seed: 7}
	a := runBuffered(t, cfg, 10000)
	b := runBuffered(t, cfg, 10000)
	if a.Injected != b.Injected || a.DeliveredBg != b.DeliveredBg ||
		a.LatencyBgTotal != b.LatencyBgTotal || a.DeliveredHot != b.DeliveredHot {
		t.Fatal("same seed produced different results")
	}
}

func TestBufferedQueueCapacityRespected(t *testing.T) {
	b := NewBufferedOmega(BufferedConfig{
		Terminals: 8, QueueCap: 2, ServiceTime: 50, Rate: 0.5, HotFraction: 1, Seed: 8,
	})
	clk := sim.NewClock()
	clk.Register(b)
	clk.Run(2000)
	for j := 0; j < b.o.Columns(); j++ {
		for pos := 0; pos < b.cfg.Terminals; pos++ {
			if n := b.colQ(j, pos).Len(); n > 2 {
				t.Fatalf("queue [%d][%d] holds %d > capacity 2", j, pos, n)
			}
		}
	}
}

func TestBufferedPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewBufferedOmega(BufferedConfig{})
}

func TestBufferedHotLatencyAccounting(t *testing.T) {
	b := runBuffered(t, BufferedConfig{
		Terminals: 8, QueueCap: 4, ServiceTime: 1, Rate: 0.05, HotFraction: 0.5, Seed: 9,
	}, 20000)
	if b.DeliveredHot == 0 {
		t.Fatal("no hot traffic delivered")
	}
	if b.MeanLatencyHot() <= 0 {
		t.Fatal("hot latency not accounted")
	}
}
