package syncprim

import (
	"testing"

	"cfm/internal/cache"
	"cfm/internal/memory"
	"cfm/internal/sim"
)

// rig wires a cache protocol, a clock, and an invariant check.
type rig struct {
	c   *cache.Protocol
	clk *sim.Clock
}

func newRig(t *testing.T, procs int) *rig {
	r := &rig{c: cache.New(cache.Config{Processors: procs, Lines: 4, RetryDelay: 1}, nil), clk: sim.NewClock()}
	r.clk.RegisterPrio(r.c, 5) // automata tick first, protocol second
	r.clk.RegisterPrio(sim.TickerFunc(func(tt sim.Slot, ph sim.Phase) {
		if ph == sim.PhaseUpdate {
			if err := r.c.CheckCoherence(); err != nil {
				t.Fatalf("slot %d: %v", tt, err)
			}
		}
	}), 10)
	return r
}

func TestLockerSingleAcquireRelease(t *testing.T) {
	r := newRig(t, 8)
	lk := NewLocker(r.c, 0)
	r.clk.Register(lk)
	lk.Request(3)
	if _, ok := r.clk.RunUntil(func() bool { return lk.Holding(3) }, 5000); !ok {
		t.Fatal("lock never acquired")
	}
	lk.Release(3)
	if _, ok := r.clk.RunUntil(func() bool {
		return !lk.Holding(3) && r.c.Idle()
	}, 5000); !ok {
		t.Fatal("release never completed")
	}
	// After release + write-back the lock word in the coherent view is 0.
	if v := r.c.PeekMemory(0)[0]; v != 0 {
		// The free value may still be dirty in P3's cache.
		if d := r.c.CachedData(3, 0); d == nil || d[0] != 0 {
			t.Fatalf("lock word %d after release", v)
		}
	}
}

func TestLockerMutualExclusionAndFairness(t *testing.T) {
	r := newRig(t, 8)
	lk := NewLocker(r.c, 0)
	r.clk.Register(lk)

	const rounds = 3
	remaining := map[int]int{1: rounds, 4: rounds, 6: rounds}
	var order []int
	releaseAt := make(map[int]sim.Slot)
	lk.OnAcquire = func(p int, tt sim.Slot) {
		order = append(order, p)
		releaseAt[p] = tt + 5
	}
	maxHold := 0
	r.clk.Register(sim.TickerFunc(func(tt sim.Slot, ph sim.Phase) {
		if ph != sim.PhaseIssue {
			return
		}
		holders := 0
		for p := 0; p < 8; p++ {
			if lk.Holding(p) {
				holders++
			}
		}
		if holders > maxHold {
			maxHold = holders
		}
		for p, at := range releaseAt {
			if lk.Holding(p) && tt >= at {
				remaining[p]--
				lk.Release(p)
				delete(releaseAt, p)
				if remaining[p] > 0 {
					lk.Request(p)
				}
			}
		}
	}))
	for p := range remaining {
		lk.Request(p)
	}
	done := func() bool {
		for _, n := range remaining {
			if n > 0 {
				return false
			}
		}
		return r.c.Idle()
	}
	if _, ok := r.clk.RunUntil(done, 200000); !ok {
		t.Fatalf("lock traffic did not drain; acquisitions so far: %v", order)
	}
	if maxHold > 1 {
		t.Fatalf("%d simultaneous holders", maxHold)
	}
	if len(order) != 9 {
		t.Fatalf("%d acquisitions, want 9", len(order))
	}
}

// TestLockTransferFig54: the dissertation's claim that a lock transfer
// costs about three memory accesses — write-back by the holder, read by
// the new holder, read-invalidate by the new holder — i.e. ~3n slots for
// n banks, excluding protocol retries.
func TestLockTransferFig54(t *testing.T) {
	r := newRig(t, 4)
	lk := NewLocker(r.c, 0)
	r.clk.Register(lk)

	var acquires []sim.Slot
	lk.OnAcquire = func(p int, tt sim.Slot) { acquires = append(acquires, tt) }
	lk.Request(0)
	if _, ok := r.clk.RunUntil(func() bool { return lk.Holding(0) }, 1000); !ok {
		t.Fatal("P0 never acquired")
	}
	// P1 and P3 contend while P0 holds (they reach the spin loop).
	lk.Request(1)
	lk.Request(3)
	r.clk.Run(100) // let them settle into spinning
	releaseSlot := r.clk.Now()
	lk.Release(0)
	if _, ok := r.clk.RunUntil(func() bool { return lk.Holding(1) || lk.Holding(3) }, 2000); !ok {
		t.Fatal("lock never transferred")
	}
	transfer := int64(r.clk.Now() - releaseSlot)
	// Fig. 5.4 bound: ≈3 block accesses of n=4 slots each, plus protocol
	// slack (triggered write-backs, retries). Enforce the right order of
	// magnitude: between 2 and 16 accesses' worth.
	if transfer < 8 || transfer > 64 {
		t.Fatalf("lock transfer took %d slots; expected ≈3 accesses (12 slots) ±slack", transfer)
	}
}

// TestLockerSpinnersHitInCache: while a lock is held, waiting processors
// spin on their cached copy — cache hits, not memory traffic (the no-hot-
// spot property).
func TestLockerSpinnersHitInCache(t *testing.T) {
	r := newRig(t, 8)
	lk := NewLocker(r.c, 0)
	r.clk.Register(lk)
	lk.Request(0)
	if _, ok := r.clk.RunUntil(func() bool { return lk.Holding(0) }, 1000); !ok {
		t.Fatal("no acquire")
	}
	lk.Request(2)
	r.clk.Run(200) // P2 spins while P0 holds
	hitsBefore := r.c.Hits
	r.clk.Run(400)
	if r.c.Hits-hitsBefore < 20 {
		t.Fatalf("spinning generated only %d cache hits in 400 slots; expected continuous local spinning", r.c.Hits-hitsBefore)
	}
}

func TestLockerReleaseWithoutHoldPanics(t *testing.T) {
	r := newRig(t, 4)
	lk := NewLocker(r.c, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	lk.Release(0)
}

// TestMultiLockFig55 reproduces Fig. 5.5 exactly: target block 01010110,
// first request 10100001 succeeds setting 11110111, second request fails
// (conflicting bits), unlock of the first restores 01010110.
func TestMultiLockFig55(t *testing.T) {
	r := newRig(t, 8)
	ml := NewMultiLocker(r.c, 0)
	r.clk.Register(ml)
	init := make(memory.Block, 8)
	init[0] = 0b01010110
	r.c.PokeMemory(0, init)

	ml.Request(0, 0b10100001)
	if _, ok := r.clk.RunUntil(func() bool { return ml.Holding(0) != 0 }, 2000); !ok {
		t.Fatal("first multiple lock not granted")
	}
	// The block now holds the OR of target and pattern.
	word := func() Pattern {
		if d := ml.c.CachedData(0, 0); d != nil {
			return Pattern(d[0])
		}
		return Pattern(r.c.PeekMemory(0)[0])
	}
	// Find the current coherent value (may be dirty in any cache).
	cur := func() Pattern {
		for p := 0; p < 8; p++ {
			if r.c.State(p, 0) == cache.Dirty {
				return Pattern(r.c.CachedData(p, 0)[0])
			}
		}
		return Pattern(r.c.PeekMemory(0)[0])
	}
	_ = word
	if got := cur(); got != 0b11110111 {
		t.Fatalf("block after first lock = %08b, want 11110111", got)
	}

	// Second request overlaps (bit 0 and bit 2 taken): must fail and spin.
	ml.Request(1, 0b00000101)
	r.clk.Run(3000)
	if ml.Holding(1) != 0 {
		t.Fatal("conflicting multiple lock was granted")
	}
	if ml.Failures == 0 {
		t.Fatal("no multiple test-and-set failure recorded")
	}

	// Unlock the first: 11110111 &^ 10100001 = 01010110; then the second
	// pattern (00000101 vs 01010110) still conflicts on bit 2... it does
	// (bit 2 = 1 in 0110). So release and check the restored value via a
	// third processor's request for free bits.
	ml.Release(0)
	if _, ok := r.clk.RunUntil(func() bool { return ml.Holding(0) == 0 && !r.c.Busy(0) }, 3000); !ok {
		t.Fatal("unlock did not complete")
	}
	// Request 1 still conflicts (bit 2 set in the base pattern): P1 spins.
	ml.Request(2, 0b10000001) // free bits: must succeed
	if _, ok := r.clk.RunUntil(func() bool { return ml.Holding(2) != 0 }, 5000); !ok {
		t.Fatalf("non-conflicting multiple lock not granted; block = %08b", cur())
	}
}

// TestMultiLockAllOrNothing: a request never acquires a strict subset.
func TestMultiLockAllOrNothing(t *testing.T) {
	r := newRig(t, 8)
	ml := NewMultiLocker(r.c, 0)
	r.clk.Register(ml)

	// P0 holds bits {0,1}; P1 wants {1,2}: must get nothing, and bit 2
	// must remain free for P2.
	ml.Request(0, 0b011)
	if _, ok := r.clk.RunUntil(func() bool { return ml.Holding(0) != 0 }, 2000); !ok {
		t.Fatal("P0 not granted")
	}
	ml.Request(1, 0b110)
	r.clk.Run(2000)
	if ml.Holding(1) != 0 {
		t.Fatal("P1 granted despite conflict")
	}
	ml.Request(2, 0b100)
	if _, ok := r.clk.RunUntil(func() bool { return ml.Holding(2) != 0 }, 5000); !ok {
		t.Fatal("P2 not granted despite free bit (P1 must not hold partial locks)")
	}
}

// TestMultiLockEventuallyGranted: after the conflicting holder releases,
// the spinner gets its full pattern.
func TestMultiLockEventuallyGranted(t *testing.T) {
	r := newRig(t, 8)
	ml := NewMultiLocker(r.c, 0)
	r.clk.Register(ml)
	ml.Request(0, 0b011)
	if _, ok := r.clk.RunUntil(func() bool { return ml.Holding(0) != 0 }, 2000); !ok {
		t.Fatal("P0 not granted")
	}
	ml.Request(1, 0b110)
	r.clk.Run(500)
	ml.Release(0)
	if _, ok := r.clk.RunUntil(func() bool { return ml.Holding(1) == 0b110 }, 20000); !ok {
		t.Fatal("P1 never granted after release")
	}
}

// TestMultiLockNoDeadlockDiningPattern: the dining-philosophers pattern —
// each of 5 philosophers needs chopsticks {i, (i+1) mod 5} as one atomic
// pattern; atomic multiple lock makes the classic deadlock impossible.
func TestMultiLockNoDeadlockDiningPattern(t *testing.T) {
	r := newRig(t, 8)
	ml := NewMultiLocker(r.c, 0)
	r.clk.Register(ml)

	meals := make([]int, 5)
	const want = 3
	release := make(map[int]sim.Slot)
	ml.OnAcquire = func(p int, pat Pattern, tt sim.Slot) { release[p] = tt + 7 }
	driver := sim.TickerFunc(func(tt sim.Slot, ph sim.Phase) {
		if ph != sim.PhaseIssue {
			return
		}
		for p := 0; p < 5; p++ {
			if ml.Holding(p) != 0 {
				if at, ok := release[p]; ok && tt >= at {
					meals[p]++
					delete(release, p)
					ml.Release(p)
				}
			} else if meals[p] < want && !r.c.Busy(p) && ml.state[p] == msIdle && ml.want[p] == 0 {
				ml.Request(p, Pattern(1<<p|1<<((p+1)%5)))
			}
		}
	})
	r.clk.Register(driver)
	done := func() bool {
		for _, m := range meals {
			if m < want {
				return false
			}
		}
		return true
	}
	if _, ok := r.clk.RunUntil(done, 500000); !ok {
		t.Fatalf("philosophers starved: meals=%v", meals)
	}
}

func TestMultiLockPanics(t *testing.T) {
	r := newRig(t, 4)
	ml := NewMultiLocker(r.c, 0)
	for name, fn := range map[string]func(){
		"empty":   func() { ml.Request(0, 0) },
		"release": func() { ml.Release(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBarrierReleasesAllTogether(t *testing.T) {
	r := newRig(t, 8)
	bar := NewBarrier(r.c, 0, 4)
	r.clk.Register(bar)

	released := map[int]sim.Slot{}
	bar.OnRelease = func(p int, tt sim.Slot) { released[p] = tt }
	// Staggered arrivals.
	arrivals := map[sim.Slot][]int{0: {0}, 30: {1}, 60: {2}, 90: {3}}
	r.clk.Register(sim.TickerFunc(func(tt sim.Slot, ph sim.Phase) {
		if ph != sim.PhaseIssue {
			return
		}
		for _, p := range arrivals[tt] {
			bar.Arrive(p)
		}
	}))
	if _, ok := r.clk.RunUntil(func() bool { return len(released) == 4 }, 50000); !ok {
		t.Fatalf("only %d of 4 released", len(released))
	}
	// Nobody released before the last arrival (slot 90).
	for p, at := range released {
		if at < 90 {
			t.Fatalf("P%d released at %d, before the last arrival", p, at)
		}
	}
	if bar.Episodes != 1 {
		t.Fatalf("Episodes = %d, want 1", bar.Episodes)
	}
}

func TestBarrierReusableAcrossEpisodes(t *testing.T) {
	r := newRig(t, 4)
	bar := NewBarrier(r.c, 0, 3)
	r.clk.Register(bar)
	passes := make([]int, 4)
	bar.OnRelease = func(p int, tt sim.Slot) { passes[p]++ }
	const episodes = 3
	r.clk.Register(sim.TickerFunc(func(tt sim.Slot, ph sim.Phase) {
		if ph != sim.PhaseIssue {
			return
		}
		for p := 0; p < 3; p++ {
			if passes[p] < episodes && bar.state[p] != bsArriving && bar.state[p] != bsWaiting &&
				bar.state[p] != bsReading && !bar.arrived[p] && passes[p] == minPass(passes[:3]) {
				bar.Arrive(p)
			}
		}
	}))
	if _, ok := r.clk.RunUntil(func() bool {
		return passes[0] == episodes && passes[1] == episodes && passes[2] == episodes
	}, 200000); !ok {
		t.Fatalf("episodes did not complete: %v", passes)
	}
	if bar.Episodes != episodes {
		t.Fatalf("Episodes = %d, want %d", bar.Episodes, episodes)
	}
}

func minPass(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func TestBarrierPanics(t *testing.T) {
	r := newRig(t, 4)
	for name, fn := range map[string]func(){
		"parties0":  func() { NewBarrier(r.c, 0, 0) },
		"partiesN":  func() { NewBarrier(r.c, 0, 5) },
		"dblArrive": func() { b := NewBarrier(r.c, 0, 2); b.Arrive(0); b.Arrive(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestLockTransferEventSequence reproduces Fig. 5.4's step structure from
// the protocol trace: after the release, the order of protocol-level
// events is (1) the holder's read-invalidate + store of the free value,
// (2) its triggered write-back publishing the lock, (3) the new holder's
// read observing it free, (4) the new holder's read-invalidate taking
// ownership.
func TestLockTransferEventSequence(t *testing.T) {
	trace := sim.NewTrace()
	c := cache.New(cache.Config{Processors: 4, Lines: 4, RetryDelay: 1}, trace)
	lk := NewLocker(c, 0)
	clk := sim.NewClock()
	clk.Register(lk)
	clk.Register(c)
	lk.Request(0)
	clk.RunUntil(func() bool { return lk.Holding(0) }, 1000)
	lk.Request(1)
	clk.Run(100)
	markIdx := trace.Len()
	lk.Release(0)
	clk.RunUntil(func() bool { return lk.Holding(1) }, 2000)

	var order []string
	for _, e := range trace.Events()[markIdx:] {
		switch {
		case e.Who == "P0" && e.What == "start read-invalidate block 0":
			order = append(order, "holder-readinv")
		case e.Who == "P0" && e.What == "start write-back block 0":
			order = append(order, "holder-writeback")
		case e.Who == "P1" && e.What == "read block 0 complete":
			order = append(order, "waiter-read")
		case e.Who == "P1" && e.What == "read-invalidate block 0 complete":
			order = append(order, "waiter-readinv")
		}
	}
	// The essential Fig. 5.4 milestones must appear, in order (reads may
	// START earlier but can only COMPLETE after the write-back publishes
	// the free lock; extra retries in between are fine).
	want := []string{"holder-readinv", "holder-writeback", "waiter-read", "waiter-readinv"}
	wi := 0
	for _, ev := range order {
		if wi < len(want) && ev == want[wi] {
			wi++
		}
	}
	if wi != len(want) {
		t.Fatalf("lock transfer sequence %v missing milestones %v", order, want[wi:])
	}
}
