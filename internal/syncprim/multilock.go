package syncprim

import (
	"fmt"

	"cfm/internal/cache"
	"cfm/internal/memory"
	"cfm/internal/sim"
)

// Pattern is a bit map of lock positions within a lock block's word 0,
// as in Fig. 5.5: bit i set means lock i is requested (or held).
type Pattern uint64

// multiState tracks one processor's multiple-lock protocol position.
type multiState int

const (
	msIdle multiState = iota
	msTrying
	msSpinning
	msReading
	msHolding
	msUnlocking
)

// MultiLocker implements atomic multiple lock/unlock (§5.3.3): a
// processor acquires either ALL the locks in its request pattern or none,
// via the multiple test-and-set operation — an atomic RMW that sets the
// pattern only if no requested bit is already taken. This eliminates the
// latency of acquiring several simple locks one at a time and the
// deadlocks of partial acquisition, and is the substrate for the
// resource-binding programming paradigm of Chapter 6.
// It implements sim.Ticker.
//
//cfm:no-stater in-flight acquisitions hold closures inside cache.Protocol; quiesce before checkpointing
type MultiLocker struct {
	c      *cache.Protocol
	offset int
	state  []multiState
	want   []Pattern // requested pattern per processor (0 = none)
	held   []Pattern // pattern currently held

	// OnAcquire, if set, runs when a processor obtains its pattern.
	OnAcquire func(p int, pat Pattern, t sim.Slot)

	// Acquisitions counts successful multiple-lock grants.
	Acquisitions int64
	// Failures counts multiple test-and-set attempts that found a
	// conflicting bit (the "second lock fails" case of Fig. 5.5).
	Failures int64
}

// NewMultiLocker builds a multiple-lock manager over the block at offset.
func NewMultiLocker(c *cache.Protocol, offset int) *MultiLocker {
	return &MultiLocker{
		c:      c,
		offset: offset,
		state:  make([]multiState, c.Banks()),
		want:   make([]Pattern, c.Banks()),
		held:   make([]Pattern, c.Banks()),
	}
}

// Request registers processor p's desire for every lock in pattern.
func (m *MultiLocker) Request(p int, pattern Pattern) {
	if pattern == 0 {
		panic("syncprim: empty lock pattern")
	}
	if m.state[p] != msIdle {
		panic(fmt.Sprintf("syncprim: P%d requested locks while busy", p))
	}
	m.want[p] = pattern
}

// Holding returns the pattern p currently holds (0 if none).
func (m *MultiLocker) Holding(p int) Pattern {
	if m.state[p] != msHolding {
		return 0
	}
	return m.held[p]
}

// Release schedules the atomic unlock of every lock p holds.
func (m *MultiLocker) Release(p int) {
	if m.state[p] != msHolding {
		panic(fmt.Sprintf("syncprim: P%d released locks it does not hold", p))
	}
	m.state[p] = msUnlocking
}

// Tick implements sim.Ticker.
func (m *MultiLocker) Tick(t sim.Slot, ph sim.Phase) {
	if ph != sim.PhaseIssue {
		return
	}
	for p := range m.state {
		if m.c.Busy(p) {
			continue
		}
		switch m.state[p] {
		case msIdle:
			if m.want[p] != 0 {
				m.startMTS(t, p)
			}
		case msSpinning:
			m.startSpin(t, p)
		case msUnlocking:
			m.startUnlock(t, p)
		}
	}
}

// PhaseMask implements sim.PhaseMasker.
func (m *MultiLocker) PhaseMask() sim.PhaseMask { return sim.MaskOf(sim.PhaseIssue) }

// startMTS issues the multiple test-and-set: atomically set the pattern
// if no requested bit is taken, per the §5.3.3 definition.
func (m *MultiLocker) startMTS(t sim.Slot, p int) {
	pat := m.want[p]
	m.state[p] = msTrying
	var failed bool
	m.c.RMW(p, m.offset, func(old memory.Block) memory.Block {
		if Pattern(old[0])&pat != 0 {
			failed = true
			return old // conflict: leave the block unchanged
		}
		failed = false
		nw := old.Clone()
		nw[0] = memory.Word(Pattern(old[0]) | pat)
		return nw
	}, func(old memory.Block) {
		if failed {
			m.Failures++
			m.state[p] = msSpinning // busy-wait until the bits clear
			return
		}
		m.state[p] = msHolding
		m.held[p] = pat
		m.want[p] = 0
		m.Acquisitions++
		if m.OnAcquire != nil {
			m.OnAcquire(p, pat, t)
		}
	})
}

// startSpin loads the lock block; when no requested bit is taken the
// processor retries the multiple test-and-set (while (s & p);).
func (m *MultiLocker) startSpin(t sim.Slot, p int) {
	pat := m.want[p]
	m.state[p] = msReading
	m.c.Load(p, m.offset, func(b memory.Block) {
		if Pattern(b[0])&pat == 0 {
			m.state[p] = msIdle // retry next tick
		} else {
			m.state[p] = msSpinning
		}
	})
}

// startUnlock atomically clears the held bits (s = s & ^p).
func (m *MultiLocker) startUnlock(t sim.Slot, p int) {
	pat := m.held[p]
	m.c.RMW(p, m.offset, func(old memory.Block) memory.Block {
		nw := old.Clone()
		nw[0] = memory.Word(Pattern(old[0]) &^ pat)
		return nw
	}, func(memory.Block) {
		m.held[p] = 0
		m.state[p] = msIdle
	})
}
