// Package syncprim implements the high-level synchronization support of
// §5.3 on top of the CFM cache coherence protocol: simple busy-waiting
// lock/unlock (§5.3.2, Fig. 5.4), the multiple test-and-set operation and
// atomic multiple lock/unlock bitmaps (§5.3.3, Fig. 5.5), and a
// sense-reversing barrier.
//
// Because the CFM is conflict-free, the busy-waiting scheme creates no
// interconnection traffic problems or hot spots: waiting processors spin
// on their locally cached copy, the release invalidates those copies in
// one pipelined pass, and the whole lock transfer costs approximately
// three memory accesses — the holder's write-back, the new holder's read,
// and the new holder's read-invalidate.
package syncprim

import (
	"fmt"

	"cfm/internal/cache"
	"cfm/internal/memory"
	"cfm/internal/sim"
)

// lockState is one processor's position in the busy-waiting protocol.
type lockState int

const (
	lsIdle lockState = iota
	lsAcquiring
	lsSpinLoad
	lsHolding
	lsReleasing
)

// Locker provides the simple lock/unlock of §5.3.2 over a cache protocol
// engine: acquisition is an atomic test-and-set (read-invalidate +
// modify), contention is handled by read-looping on the locally cached
// lock block. It implements sim.Ticker.
//
//cfm:no-stater in-flight acquisitions hold closures inside cache.Protocol; quiesce before checkpointing
type Locker struct {
	c      *cache.Protocol
	offset int
	state  []lockState
	want   []bool

	// OnAcquire, if set, runs when a processor obtains the lock.
	OnAcquire func(p int, t sim.Slot)

	// Acquisitions counts successful grants.
	Acquisitions int64
	// TestAndSets counts protocol-level test-and-set attempts.
	TestAndSets int64
}

// NewLocker builds a lock on the block at offset.
func NewLocker(c *cache.Protocol, offset int) *Locker {
	return &Locker{
		c:      c,
		offset: offset,
		state:  make([]lockState, c.Banks()),
		want:   make([]bool, c.Banks()),
	}
}

// Request registers processor p's desire for the lock.
func (l *Locker) Request(p int) { l.want[p] = true }

// Holding reports whether p holds the lock.
func (l *Locker) Holding(p int) bool { return l.state[p] == lsHolding }

// Release schedules the unlock for p, which must hold the lock.
func (l *Locker) Release(p int) {
	if l.state[p] != lsHolding {
		panic(fmt.Sprintf("syncprim: P%d released a lock it does not hold", p))
	}
	l.state[p] = lsReleasing
}

// Tick implements sim.Ticker.
func (l *Locker) Tick(t sim.Slot, ph sim.Phase) {
	if ph != sim.PhaseIssue {
		return
	}
	for p := range l.state {
		if l.c.Busy(p) {
			continue
		}
		switch l.state[p] {
		case lsIdle:
			if l.want[p] {
				l.startTAS(t, p)
			}
		case lsSpinLoad:
			l.startSpin(t, p)
		case lsReleasing:
			l.startRelease(t, p)
		}
	}
}

// PhaseMask implements sim.PhaseMasker.
func (l *Locker) PhaseMask() sim.PhaseMask { return sim.MaskOf(sim.PhaseIssue) }

// startTAS issues the atomic test-and-set: an RMW that sets word 0 to 1
// and observes the old value.
func (l *Locker) startTAS(t sim.Slot, p int) {
	l.state[p] = lsAcquiring
	l.TestAndSets++
	l.c.RMW(p, l.offset, func(old memory.Block) memory.Block {
		nw := old.Clone()
		nw[0] = 1
		return nw
	}, func(old memory.Block) {
		if old[0] == 0 {
			l.state[p] = lsHolding
			l.want[p] = false
			l.Acquisitions++
			if l.OnAcquire != nil {
				l.OnAcquire(p, t)
			}
			return
		}
		l.state[p] = lsSpinLoad
	})
}

// startSpin issues one load of the lock block; waiting processors loop on
// reads — which hit in their local cache until the holder's release
// invalidates the copy — and retry the test-and-set when the lock reads
// free.
func (l *Locker) startSpin(t sim.Slot, p int) {
	l.c.Load(p, l.offset, func(b memory.Block) {
		if b[0] == 0 {
			l.state[p] = lsIdle // retry test-and-set next tick
		} else {
			l.state[p] = lsSpinLoad
		}
	})
}

// startRelease stores 0 to the lock word; the store's read-invalidate
// clears every spinner's cached copy in one pass, and the subsequent
// triggered write-back publishes the free lock. Queueing the store makes
// the processor Busy, so the automaton cannot double-issue; completion
// returns the state to idle.
func (l *Locker) startRelease(t sim.Slot, p int) {
	l.c.Store(p, l.offset, 0, 0, func(memory.Block) {
		l.state[p] = lsIdle
	})
}
