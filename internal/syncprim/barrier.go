package syncprim

import (
	"fmt"

	"cfm/internal/cache"
	"cfm/internal/memory"
	"cfm/internal/sim"
)

// barrierState tracks one processor's progress through a barrier episode.
type barrierState int

const (
	bsOutside  barrierState = iota // not participating yet
	bsArriving                     // fetch-and-increment in flight
	bsWaiting                      // spinning on the sense word
	bsReading                      // spin read in flight
	bsPassed                       // released by the episode
)

// Barrier is a sense-reversing barrier built from the CFM synchronization
// operations: arrival is a fetch-and-add on the count word, waiting is a
// cached read loop on the sense word, and the last arriver flips the
// sense with a single store — each of which costs a constant number of
// conflict-free block accesses regardless of the number of waiters (the
// hot-spot-free property of §4.2.2/§5.3 applied to barriers).
//
// Block layout: word 0 = arrival count, word 1 = sense.
//
//cfm:no-stater episodes are short-lived closures inside cache.Protocol; checkpoint between episodes
type Barrier struct {
	c       *cache.Protocol
	offset  int
	parties int
	state   []barrierState
	sense   []memory.Word // each processor's expected release sense
	arrived []bool

	// OnRelease, if set, runs once per processor as it passes the barrier.
	OnRelease func(p int, t sim.Slot)

	// Episodes counts completed barrier episodes.
	Episodes int64
}

// NewBarrier builds a barrier for the given number of parties over the
// block at offset.
func NewBarrier(c *cache.Protocol, offset, parties int) *Barrier {
	if parties < 1 || parties > c.Banks() {
		panic(fmt.Sprintf("syncprim: %d parties out of range [1,%d]", parties, c.Banks()))
	}
	b := &Barrier{
		c:       c,
		offset:  offset,
		parties: parties,
		state:   make([]barrierState, c.Banks()),
		sense:   make([]memory.Word, c.Banks()),
		arrived: make([]bool, c.Banks()),
	}
	for p := range b.sense {
		b.sense[p] = 1 // first episode releases with sense 1
	}
	return b
}

// Arrive registers processor p at the barrier.
func (b *Barrier) Arrive(p int) {
	if b.arrived[p] || b.state[p] != bsOutside && b.state[p] != bsPassed {
		panic(fmt.Sprintf("syncprim: P%d arrived twice", p))
	}
	b.arrived[p] = true
}

// Passed reports whether p has been released by its latest episode.
func (b *Barrier) Passed(p int) bool { return b.state[p] == bsPassed }

// Tick implements sim.Ticker.
func (b *Barrier) Tick(t sim.Slot, ph sim.Phase) {
	if ph != sim.PhaseIssue {
		return
	}
	for p := range b.state {
		if b.c.Busy(p) {
			continue
		}
		switch b.state[p] {
		case bsOutside, bsPassed:
			if b.arrived[p] {
				b.arrived[p] = false
				b.startArrive(t, p)
			}
		case bsWaiting:
			b.startSpin(t, p)
		}
	}
}

// PhaseMask implements sim.PhaseMasker.
func (b *Barrier) PhaseMask() sim.PhaseMask { return sim.MaskOf(sim.PhaseIssue) }

// startArrive performs the atomic arrival: increment the count; the last
// arriver resets the count and flips the sense in the same atomic
// operation (one RMW, so no separate race window).
func (b *Barrier) startArrive(t sim.Slot, p int) {
	b.state[p] = bsArriving
	var released bool
	b.c.RMW(p, b.offset, func(old memory.Block) memory.Block {
		nw := old.Clone()
		nw[0]++
		if int(nw[0]) == b.parties {
			nw[0] = 0
			nw[1] = 1 - nw[1] // flip sense
			released = true
		}
		return nw
	}, func(old memory.Block) {
		if released {
			b.Episodes++
			b.pass(t, p)
			return
		}
		b.state[p] = bsWaiting
	})
}

// startSpin loads the barrier block and checks the sense word.
func (b *Barrier) startSpin(t sim.Slot, p int) {
	b.state[p] = bsReading
	want := b.sense[p]
	b.c.Load(p, b.offset, func(blk memory.Block) {
		if blk[1] == want {
			b.pass(t, p)
		} else {
			b.state[p] = bsWaiting
		}
	})
}

// pass releases p from the current episode and reverses its sense.
func (b *Barrier) pass(t sim.Slot, p int) {
	b.state[p] = bsPassed
	b.sense[p] = 1 - b.sense[p]
	if b.OnRelease != nil {
		b.OnRelease(p, t)
	}
}
