// Package flight implements the simulator's flight recorder: a
// deterministic, bounded, per-access span log. Every memory access gets
// a stable identity at issue time (ComposeID) and emits stage events —
// issue, network inject, per-column hop, bank enqueue, bank service,
// reply, retire, plus cache-hit/miss and ATT defer/retry variants — into
// a ring buffer shared by all instrumented components.
//
// The recorder follows the repo's observation doctrine end to end:
//
//   - A nil *Recorder is valid and records nothing; Enabled() is the
//     branch-cheap gate components test before building events, so the
//     disabled path stays zero-alloc (pinned by AllocsPerRun guards).
//   - Events reach the ring only from serial contexts: serial tickers
//     append directly, sharded tickers stage events per shard and fold
//     them in FinishShards in ascending shard order — the same
//     barrier-ordered control path as trace events and metric deltas.
//     The stream is therefore byte-identical between the serial and
//     parallel engines.
//   - Emission only ever happens inside the tick of a fired slot, and
//     skipped slots are provably observable no-ops, so the stream is
//     also identical between dense and skip-ahead clocks.
//
// On top of the raw ring: span assembly and latency attribution
// (attrib.go), Chrome-trace/JSONL exporters and the ASCII waterfall
// (export.go), a binary codec (encode.go), and the checkpoint-driven
// divergence bisector (bisect.go).
package flight

import (
	"fmt"

	"cfm/internal/sim"
)

// Stage identifies one step in an access's lifecycle.
type Stage uint8

// The span stages, in rough lifecycle order. StageIssue opens a span
// and StageRetire closes it (the cfmlint flight pass holds packages to
// that discipline); the others are interior and may repeat.
const (
	// StageIssue: the access was issued by its processor.
	StageIssue Stage = iota
	// StageNetInject: a packet entered the interconnection network.
	StageNetInject
	// StageHop: a packet advanced one network column.
	StageHop
	// StageBankEnqueue: the access found its module busy and queued
	// (or scheduled a retry); Arg carries the wait when known.
	StageBankEnqueue
	// StageBankService: a bank (or module) began serving the access;
	// Arg carries the service time in slots when known.
	StageBankService
	// StageReply: the reply started back toward the processor.
	StageReply
	// StageRetire: the access completed; Arg carries the end-to-end
	// latency in slots when known.
	StageRetire
	// StageCacheHit: the access was satisfied by a cache.
	StageCacheHit
	// StageCacheMiss: the access missed and goes to memory.
	StageCacheMiss
	// StageATTDefer: an address-tracking comparison deferred the
	// operation (write restarting behind a swap).
	StageATTDefer
	// StageATTRetry: an address-tracking comparison restarted the
	// operation from scratch (read or swap restart).
	StageATTRetry

	numStages
)

var stageNames = [numStages]string{
	"issue", "net-inject", "hop", "bank-enqueue", "bank-service",
	"reply", "retire", "cache-hit", "cache-miss", "att-defer", "att-retry",
}

// String names the stage.
func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Stages returns the number of defined stages (for validation).
func Stages() int { return int(numStages) }

// Event is one recorded stage of one access.
type Event struct {
	// ID is the access's stable identity, assigned at issue time
	// (ComposeID of the issuing actor and issue slot).
	ID uint64
	// Slot is when the stage happened.
	Slot sim.Slot
	// Stage is what happened.
	Stage Stage
	// Actor is the component instance that emitted the event: a
	// processor, bank, module, network column, or terminal index,
	// depending on the stage.
	Actor int32
	// Arg is stage-specific payload: block offset, queue wait,
	// service time, latency; 0 when the stage carries none.
	Arg int64
}

// String renders the event for logs and the waterfall view.
func (e Event) String() string {
	return fmt.Sprintf("[%d] %016x %s actor=%d arg=%d", e.Slot, e.ID, e.Stage, e.Actor, e.Arg)
}

// ComposeID builds an access identity from the issuing actor and the
// issue slot. Every instrumented component issues at most one access
// per actor per slot, so the pair is unique for the life of a run
// without any cross-shard coordination — the ID can be composed inside
// a shard tick without breaking determinism. The slot's low 32 bits
// suffice: IDs only need to be unique among accesses alive or resident
// in the ring together.
func ComposeID(actor int, issued sim.Slot) uint64 {
	return uint64(uint32(actor))<<32 | uint64(uint32(issued))
}

// IDActor recovers the issuing actor from an access ID.
func IDActor(id uint64) int { return int(uint32(id >> 32)) }

// IDIssued recovers the (low 32 bits of the) issue slot from an ID.
func IDIssued(id uint64) uint32 { return uint32(id) }

// Recorder is the bounded ring the stage events land in. The zero
// capacity is invalid: build with NewRecorder. A nil *Recorder is a
// valid no-op recorder (the disabled fast path).
type Recorder struct {
	events  []Event // ring storage, preallocated at construction
	head    int     // index of the oldest event when full, else 0
	n       int     // live events, ≤ cap
	dropped uint64  // events overwritten since construction/Reset
}

// DefaultLimit is the ring capacity used when a caller passes a
// non-positive -spans-limit.
const DefaultLimit = 1 << 16

// NewRecorder returns a recorder keeping the most recent limit events
// (DefaultLimit when limit <= 0). The ring is allocated up front so
// Emit never allocates.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Recorder{events: make([]Event, limit)}
}

// Enabled reports whether events should be built at all; the nil fast
// path, mirroring sim.Trace. Hot paths must test it before doing any
// per-event work (enforced by the cfmlint flight pass).
func (r *Recorder) Enabled() bool { return r != nil }

// Emit records one stage event. Nil-safe, zero-alloc: the event is
// written in place into the preallocated ring, overwriting the oldest
// event when full. Call only from serial contexts (serial tickers,
// FinishShards folds); sharded ticks stage events and fold them later.
func (r *Recorder) Emit(id uint64, t sim.Slot, st Stage, actor int32, arg int64) {
	if r == nil {
		return
	}
	if r.n < len(r.events) {
		r.events[r.n] = Event{ID: id, Slot: t, Stage: st, Actor: actor, Arg: arg}
		r.n++
		return
	}
	r.events[r.head] = Event{ID: id, Slot: t, Stage: st, Actor: actor, Arg: arg}
	r.head++
	if r.head == len(r.events) {
		r.head = 0
	}
	r.dropped++
}

// Append records an already-built event (the staged-fold entry point).
func (r *Recorder) Append(ev Event) {
	if r == nil {
		return
	}
	r.Emit(ev.ID, ev.Slot, ev.Stage, ev.Actor, ev.Arg)
}

// Len returns the number of live events (≤ Cap).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dropped returns how many events were overwritten by newer ones.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Reset empties the ring and zeroes the drop count.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.head, r.n, r.dropped = 0, 0, 0
}

// Events returns the live events, oldest first, as a fresh slice.
func (r *Recorder) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Event, 0, r.n)
	if r.n < len(r.events) {
		return append(out, r.events[:r.n]...)
	}
	out = append(out, r.events[r.head:]...)
	return append(out, r.events[:r.head]...)
}

// FNV-1a, the digest primitive shared with sim.Trace and
// metrics.Snapshot.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	h ^= 0xff // field separator
	h *= fnvPrime64
	return h
}

// Digest folds the live events (oldest first) and the drop count into
// one FNV-1a value. Two recorders with byte-identical streams — the
// serial/parallel and dense/skip-ahead equivalence guarantee — digest
// equal; any reordering, drop, or field difference shows.
func (r *Recorder) Digest() uint64 {
	h := uint64(fnvOffset64)
	if r == nil {
		return h
	}
	digestOne := func(ev Event) {
		h = fnvMix(h, ev.ID)
		h = fnvMix(h, uint64(ev.Slot))
		h = fnvMix(h, uint64(ev.Stage))
		h = fnvMix(h, uint64(uint32(ev.Actor)))
		h = fnvMix(h, uint64(ev.Arg))
	}
	if r.n < len(r.events) {
		for _, ev := range r.events[:r.n] {
			digestOne(ev)
		}
	} else {
		for _, ev := range r.events[r.head:] {
			digestOne(ev)
		}
		for _, ev := range r.events[:r.head] {
			digestOne(ev)
		}
	}
	return fnvMix(h, r.dropped)
}

// SaveState implements sim.Stater so a recorder attached to an
// engine's checkpoint state (AttachState "flight") round-trips: a
// resumed run's ring continues byte-for-byte where the checkpointed
// run's was — which is what lets the bisector compare span digests
// across checkpoint/restore probes.
func (r *Recorder) SaveState(enc *sim.StateEncoder) {
	evs := r.Events()
	enc.Int(len(r.events))
	enc.U64(r.dropped)
	enc.Int(len(evs))
	for _, ev := range evs {
		enc.U64(ev.ID)
		enc.Slot(ev.Slot)
		enc.U64(uint64(ev.Stage))
		enc.I64(int64(ev.Actor))
		enc.I64(ev.Arg)
	}
}

// LoadState implements sim.Stater. The restoring recorder must be
// configured with the checkpointed capacity (the -spans-limit flag is
// configuration, which snapshots never carry).
func (r *Recorder) LoadState(dec *sim.StateDecoder) {
	capacity := dec.Int()
	if dec.Err() != nil {
		return
	}
	if capacity != len(r.events) {
		dec.Failf("flight: recorder capacity %d in checkpoint, %d configured", capacity, len(r.events))
		return
	}
	r.Reset()
	dropped := dec.U64()
	count := dec.Count()
	if count > capacity {
		dec.Failf("flight: %d events in checkpoint exceed capacity %d", count, capacity)
		return
	}
	for i := 0; i < count && dec.Err() == nil; i++ {
		id := dec.U64()
		slot := dec.Slot()
		st := dec.U64()
		actor := dec.I64()
		arg := dec.I64()
		if st >= uint64(numStages) {
			dec.Failf("flight: stage %d out of range", st)
			return
		}
		r.Emit(id, slot, Stage(st), int32(actor), arg)
	}
	r.dropped = dropped
}
