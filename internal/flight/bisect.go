package flight

import (
	"bytes"
	"errors"
	"fmt"

	"cfm/internal/sim"
)

// The divergence bisector: given two engines that are observably equal
// at some slot but differ at a later one, binary-search the FIRST slot
// at which their observation digests diverge, using the deterministic
// checkpoint/restore machinery (PR 6) to rewind instead of replaying
// from slot 0 — O(log slots) restores instead of O(slots) re-runs.
//
// "Observation digest" is caller-defined (registry digest, trace
// digest, span digest, or any concatenation): Bisect only compares the
// strings for equality. Determinism is what makes the search sound:
// restoring a checkpoint and re-running to slot s always reproduces
// the same digest at s, so "equal at lo, different at hi" brackets a
// unique first divergent slot.

// ErrNoDivergence reports that both engines digested equal at the
// bisection's upper bound — there is nothing to localize.
var ErrNoDivergence = errors.New("flight: engines agree at the upper bound; no divergence to bisect")

// Probe records one bisection step, for the O(log) accounting and the
// `cfmsim bisect` narration.
type Probe struct {
	Slot  sim.Slot
	Equal bool
}

// BisectResult reports a localized divergence.
type BisectResult struct {
	// First is the first slot whose digests differ: at First-1 (and
	// every slot down to the starting slot) the digests were equal.
	First sim.Slot
	// DigestA and DigestB are the differing digests at First.
	DigestA, DigestB string
	// Probes are the bisection steps taken, in order.
	Probes []Probe
	// Restores counts Engine.Restore calls — 2 per probe, the O(log
	// slots) bound the bisect test pins.
	Restores int
}

// Checkpoint snapshots an engine into memory.
func Checkpoint(eng sim.Engine) ([]byte, error) {
	var buf bytes.Buffer
	if err := eng.Checkpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Bisect localizes the first slot in (a.Now(), hi] at which digest(a)
// and digest(b) differ. Both engines must be at the same slot with
// equal digests when called; Bisect drives them itself (checkpoint,
// restore, Run) and leaves them at the divergent slot. The two engines
// may differ in kind (serial vs parallel), skip-ahead setting, or
// scenario wiring — whatever difference is under investigation.
func Bisect(a, b sim.Engine, digest func(sim.Engine) string, hi sim.Slot) (BisectResult, error) {
	var res BisectResult
	lo := a.Now()
	if bn := b.Now(); bn != lo {
		return res, fmt.Errorf("flight: bisect engines start at different slots (%d vs %d)", lo, bn)
	}
	if hi <= lo {
		return res, fmt.Errorf("flight: bisect upper bound %d not after starting slot %d", hi, lo)
	}
	if da, db := digest(a), digest(b); da != db {
		// Already divergent at the starting slot: nothing to search.
		res.First, res.DigestA, res.DigestB = lo, da, db
		return res, nil
	}
	ckA, err := Checkpoint(a)
	if err != nil {
		return res, err
	}
	ckB, err := Checkpoint(b)
	if err != nil {
		return res, err
	}
	// Invariant: digests equal at lo; ckA/ckB hold both engines at lo.
	// Probe the midpoint by rewinding to lo and running forward; shrink
	// whichever bound the comparison updates. The first probe is hi
	// itself, verifying a divergence exists at all.
	probe := func(target sim.Slot) (bool, error) {
		if err := a.Restore(bytes.NewReader(ckA)); err != nil {
			return false, fmt.Errorf("flight: bisect restore A: %w", err)
		}
		if err := b.Restore(bytes.NewReader(ckB)); err != nil {
			return false, fmt.Errorf("flight: bisect restore B: %w", err)
		}
		res.Restores += 2
		a.Run(int64(target - lo))
		b.Run(int64(target - lo))
		da, db := digest(a), digest(b)
		equal := da == db
		res.Probes = append(res.Probes, Probe{Slot: target, Equal: equal})
		if !equal {
			res.DigestA, res.DigestB = da, db
		}
		return equal, nil
	}
	equal, err := probe(hi)
	if err != nil {
		return res, err
	}
	if equal {
		return res, ErrNoDivergence
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		equal, err := probe(mid)
		if err != nil {
			return res, err
		}
		if equal {
			// The engines now sit at mid with equal digests: advance
			// the lower bracket by re-checkpointing here, so later
			// probes replay ever-shorter suffixes.
			lo = mid
			if ckA, err = Checkpoint(a); err != nil {
				return res, err
			}
			if ckB, err = Checkpoint(b); err != nil {
				return res, err
			}
		} else {
			hi = mid
		}
	}
	// Leave both engines AT the divergent slot so the caller can dump
	// state (flight-recorder windows, snapshots) as of the divergence.
	if hi != res.Probes[len(res.Probes)-1].Slot || res.Probes[len(res.Probes)-1].Equal {
		if _, err := probe(hi); err != nil {
			return res, err
		}
	}
	res.First = hi
	return res, nil
}

// Window extracts the events within ±radius slots of center — the
// flight-recorder window `cfmsim bisect` dumps around a localized
// divergence.
func Window(events []Event, center, radius sim.Slot) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Slot >= center-radius && ev.Slot <= center+radius {
			out = append(out, ev)
		}
	}
	return out
}
