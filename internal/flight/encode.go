package flight

import (
	"fmt"

	"cfm/internal/sim"
)

// Binary span codec: the compact, validated wire form of an event
// stream, used by the FuzzSpanRoundTrip fuzzer and anywhere spans move
// between processes. Little-endian, fixed-width:
//
//	magic  "CFMSPAN1"        8 bytes
//	count  u32               number of events
//	event  29 bytes each:    u64 id, i64 slot, u8 stage, u32 actor, i64 arg
//
// Decoding validates the magic, the count against the remaining input,
// and every stage tag, so corrupted input yields an error — never a
// panic or a silent misparse.

const (
	spanMagic     = "CFMSPAN1"
	eventWireSize = 8 + 8 + 1 + 4 + 8
)

func appendLE32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendLE64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Encode serializes events into the binary span form.
func Encode(events []Event) []byte {
	out := make([]byte, 0, len(spanMagic)+4+len(events)*eventWireSize)
	out = append(out, spanMagic...)
	out = appendLE32(out, uint32(len(events)))
	for _, ev := range events {
		out = appendLE64(out, ev.ID)
		out = appendLE64(out, uint64(int64(ev.Slot)))
		out = append(out, byte(ev.Stage))
		out = appendLE32(out, uint32(ev.Actor))
		out = appendLE64(out, uint64(ev.Arg))
	}
	return out
}

// Decode parses a binary span stream produced by Encode, validating
// framing, count, and every stage tag.
func Decode(data []byte) ([]Event, error) {
	if len(data) < len(spanMagic)+4 {
		return nil, fmt.Errorf("flight: span stream too short (%d bytes)", len(data))
	}
	if string(data[:len(spanMagic)]) != spanMagic {
		return nil, fmt.Errorf("flight: bad magic %q (not a span stream)", data[:len(spanMagic)])
	}
	body := data[len(spanMagic):]
	count := int(le32(body))
	body = body[4:]
	if count*eventWireSize != len(body) {
		return nil, fmt.Errorf("flight: %d events need %d bytes, have %d", count, count*eventWireSize, len(body))
	}
	events := make([]Event, 0, count)
	for i := 0; i < count; i++ {
		rec := body[i*eventWireSize:]
		st := rec[16]
		if st >= uint8(numStages) {
			return nil, fmt.Errorf("flight: event %d: stage tag %d out of range", i, st)
		}
		events = append(events, Event{
			ID:    le64(rec),
			Slot:  sim.Slot(int64(le64(rec[8:]))),
			Stage: Stage(st),
			Actor: int32(le32(rec[17:])),
			Arg:   int64(le64(rec[21:])),
		})
	}
	return events, nil
}
