package flight

import (
	"testing"

	"cfm/internal/metrics"
)

// fullSpan is an access with every decomposition term non-trivial:
// issued at 10, injected, two hops, a busy-bank wait, four slots of
// service, retired at 20. Total 10 = queue 3 + service 4 + network 3
// (inject + 2 hops).
func fullSpan() []Event {
	id := ComposeID(1, 10)
	return []Event{
		{ID: id, Slot: 10, Stage: StageIssue, Actor: 1},
		{ID: id, Slot: 10, Stage: StageNetInject, Actor: 1},
		{ID: id, Slot: 11, Stage: StageHop, Actor: 0},
		{ID: id, Slot: 12, Stage: StageHop, Actor: 1},
		{ID: id, Slot: 13, Stage: StageBankEnqueue, Actor: 3, Arg: 2},
		{ID: id, Slot: 16, Stage: StageBankService, Actor: 3, Arg: 4},
		{ID: id, Slot: 20, Stage: StageRetire, Actor: 1, Arg: 10},
	}
}

func TestDecompose(t *testing.T) {
	sp := Spans(fullSpan())
	if len(sp) != 1 {
		t.Fatalf("%d spans, want 1", len(sp))
	}
	bd := Decompose(sp[0])
	if !bd.Complete {
		t.Fatal("span not complete")
	}
	if bd.Issue != 10 || bd.Retire != 20 {
		t.Errorf("issue/retire %d/%d, want 10/20", bd.Issue, bd.Retire)
	}
	if bd.Total != 10 {
		t.Errorf("total %d, want 10", bd.Total)
	}
	if bd.Service != 4 {
		t.Errorf("service %d, want 4", bd.Service)
	}
	// inject is not a hop; network = 2 hops.
	if bd.Network != 2 {
		t.Errorf("network %d, want 2", bd.Network)
	}
	if bd.Queue != 10-4-2 {
		t.Errorf("queue %d, want %d", bd.Queue, 10-4-2)
	}
	if bd.Retries != 1 {
		t.Errorf("retries %d, want 1", bd.Retries)
	}
}

func TestDecomposeIncomplete(t *testing.T) {
	id := ComposeID(2, 5)
	// No retire: still in flight (or truncated by the ring).
	open := []Event{
		{ID: id, Slot: 5, Stage: StageIssue},
		{ID: id, Slot: 6, Stage: StageHop},
	}
	if bd := Decompose(Span{ID: id, Events: open}); bd.Complete {
		t.Error("unretired span reported complete")
	}
	// No opening stage: head lost to the ring.
	tail := []Event{
		{ID: id, Slot: 9, Stage: StageBankService, Arg: 4},
		{ID: id, Slot: 13, Stage: StageRetire},
	}
	if bd := Decompose(Span{ID: id, Events: tail}); bd.Complete {
		t.Error("headless span reported complete")
	}
}

func TestDecomposeQueueClamp(t *testing.T) {
	id := ComposeID(0, 0)
	// Service claims more slots than the span covers: queue clamps to 0
	// instead of going negative.
	evs := []Event{
		{ID: id, Slot: 0, Stage: StageIssue},
		{ID: id, Slot: 1, Stage: StageBankService, Arg: 99},
		{ID: id, Slot: 5, Stage: StageRetire},
	}
	bd := Decompose(Span{ID: id, Events: evs})
	if !bd.Complete || bd.Queue != 0 {
		t.Errorf("queue %d (complete=%v), want 0 (clamped)", bd.Queue, bd.Complete)
	}
}

func TestSpansPreserveFirstSeenOrder(t *testing.T) {
	evs := []Event{
		{ID: 30, Slot: 1, Stage: StageIssue},
		{ID: 10, Slot: 2, Stage: StageIssue},
		{ID: 30, Slot: 3, Stage: StageRetire},
		{ID: 20, Slot: 4, Stage: StageIssue},
		{ID: 10, Slot: 5, Stage: StageRetire},
	}
	sp := Spans(evs)
	wantOrder := []uint64{30, 10, 20}
	if len(sp) != len(wantOrder) {
		t.Fatalf("%d spans, want %d", len(sp), len(wantOrder))
	}
	for i, id := range wantOrder {
		if sp[i].ID != id {
			t.Errorf("span %d is %d, want %d (first-seen order)", i, sp[i].ID, id)
		}
	}
	if len(sp[0].Events) != 2 || len(sp[1].Events) != 2 || len(sp[2].Events) != 1 {
		t.Error("events misassigned to spans")
	}
}

func TestAttribute(t *testing.T) {
	// Three identical complete spans plus one incomplete straggler.
	var evs []Event
	for p := 0; p < 3; p++ {
		id := ComposeID(p, 10)
		evs = append(evs,
			Event{ID: id, Slot: 10, Stage: StageIssue, Actor: int32(p)},
			Event{ID: id, Slot: 12, Stage: StageBankService, Actor: 0, Arg: 4},
			Event{ID: id, Slot: 18, Stage: StageRetire, Actor: int32(p)},
		)
	}
	evs = append(evs, Event{ID: ComposeID(9, 17), Slot: 17, Stage: StageIssue, Actor: 9})
	at := Attribute(evs)
	if at.Spans != 3 {
		t.Fatalf("%d complete spans, want 3", at.Spans)
	}
	if at.Total.Mean != 8 || at.Total.P50 != 8 || at.Total.P99 != 8 {
		t.Errorf("total summary %+v, want all 8", at.Total)
	}
	if at.Service.Mean != 4 {
		t.Errorf("service mean %v, want 4", at.Service.Mean)
	}
	if at.Network.Mean != 0 {
		t.Errorf("network mean %v, want 0", at.Network.Mean)
	}
	if at.Queue.Mean != 4 {
		t.Errorf("queue mean %v, want 4", at.Queue.Mean)
	}
}

func TestAttributeEmpty(t *testing.T) {
	at := Attribute(nil)
	if at.Spans != 0 || at.Total.N != 0 || at.Total.Mean != 0 {
		t.Errorf("empty attribution non-zero: %+v", at)
	}
}

func TestRecordFeedsRegistry(t *testing.T) {
	Record(nil, "x", fullSpan()) // nil registry: no-op, no panic

	reg := metrics.New()
	Record(reg, "cfm", fullSpan())
	snap := reg.Snapshot()
	hists := map[string]metrics.HistValue{}
	for _, h := range snap.Histograms {
		hists[h.Name] = h
	}
	for _, want := range []string{
		"cfm_span_queue_cycles", "cfm_span_service_cycles",
		"cfm_span_network_cycles", "cfm_span_total_cycles",
	} {
		h, ok := hists[want]
		if !ok {
			t.Errorf("histogram %s missing from snapshot", want)
			continue
		}
		if h.Count != 1 {
			t.Errorf("%s observed %d spans, want 1", want, h.Count)
		}
	}
	if h := hists["cfm_span_total_cycles"]; h.Sum != 10 {
		t.Errorf("total sum %d, want 10", h.Sum)
	}
}
