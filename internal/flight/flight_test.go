package flight

import (
	"strings"
	"testing"

	"cfm/internal/sim"
)

func TestStageStrings(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		name := s.String()
		if name == "" || strings.HasPrefix(name, "stage(") {
			t.Errorf("stage %d has no name", s)
		}
	}
	if got := Stage(250).String(); got != "stage(250)" {
		t.Errorf("out-of-range stage renders %q", got)
	}
	if Stages() != int(numStages) {
		t.Errorf("Stages() = %d, want %d", Stages(), numStages)
	}
}

func TestComposeIDRoundTrip(t *testing.T) {
	cases := []struct {
		actor  int
		issued sim.Slot
	}{
		{0, 0}, {1, 1}, {7, 12345}, {255, 1 << 31}, {1 << 20, 99},
	}
	for _, c := range cases {
		id := ComposeID(c.actor, c.issued)
		if got := IDActor(id); got != c.actor {
			t.Errorf("IDActor(ComposeID(%d,%d)) = %d", c.actor, c.issued, got)
		}
		if got := IDIssued(id); got != uint32(c.issued) {
			t.Errorf("IDIssued(ComposeID(%d,%d)) = %d", c.actor, c.issued, got)
		}
	}
	// Distinct (actor, slot) pairs must yield distinct IDs.
	seen := map[uint64]bool{}
	for actor := 0; actor < 8; actor++ {
		for slot := sim.Slot(0); slot < 8; slot++ {
			id := ComposeID(actor, slot)
			if seen[id] {
				t.Fatalf("duplicate ID %x for actor=%d slot=%d", id, actor, slot)
			}
			seen[id] = true
		}
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	r.Emit(1, 2, StageIssue, 3, 4) // must not panic
	r.Append(Event{})
	r.Reset()
	if r.Len() != 0 || r.Cap() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder reports non-zero sizes")
	}
	if r.Events() != nil {
		t.Error("nil recorder returns events")
	}
	if got, want := r.Digest(), uint64(fnvOffset64); got != want {
		t.Errorf("nil digest %x, want offset basis %x", got, want)
	}
}

func TestRecorderFillAndWrap(t *testing.T) {
	r := NewRecorder(4)
	if !r.Enabled() {
		t.Fatal("recorder not enabled")
	}
	if r.Cap() != 4 {
		t.Fatalf("cap %d, want 4", r.Cap())
	}
	for i := 0; i < 3; i++ {
		r.Emit(uint64(i), sim.Slot(i), StageIssue, int32(i), 0)
	}
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d after 3 emits", r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if ev.ID != uint64(i) {
			t.Errorf("event %d has ID %d", i, ev.ID)
		}
	}
	// Push past capacity: the oldest two events fall off.
	for i := 3; i < 6; i++ {
		r.Emit(uint64(i), sim.Slot(i), StageRetire, int32(i), 1)
	}
	if r.Len() != 4 {
		t.Fatalf("len %d after wrap, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped %d after wrap, want 2", r.Dropped())
	}
	evs = r.Events()
	want := []uint64{2, 3, 4, 5}
	for i, ev := range evs {
		if ev.ID != want[i] {
			t.Errorf("post-wrap event %d has ID %d, want %d", i, ev.ID, want[i])
		}
	}
}

func TestRecorderClampsLimit(t *testing.T) {
	if got := NewRecorder(0).Cap(); got != DefaultLimit {
		t.Errorf("limit 0 gives cap %d, want DefaultLimit", got)
	}
	if got := NewRecorder(-5).Cap(); got != DefaultLimit {
		t.Errorf("limit -5 gives cap %d, want DefaultLimit", got)
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Emit(uint64(i), sim.Slot(i), StageHop, 0, 0)
	}
	d := r.Digest()
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("reset did not empty the ring")
	}
	if r.Digest() == d {
		t.Error("digest unchanged by reset of a non-empty ring")
	}
	// Refill identically: digest must reproduce.
	for i := 0; i < 5; i++ {
		r.Emit(uint64(i), sim.Slot(i), StageHop, 0, 0)
	}
	if r.Digest() != d {
		t.Error("identical refill digests differently")
	}
}

func TestDigestSensitivity(t *testing.T) {
	base := func() *Recorder {
		r := NewRecorder(8)
		r.Emit(1, 10, StageIssue, 2, 3)
		r.Emit(1, 12, StageRetire, 2, 2)
		return r
	}
	d0 := base().Digest()
	perturb := []func(r *Recorder){
		func(r *Recorder) { r.Emit(1, 13, StageHop, 2, 0) },  // extra event
		func(r *Recorder) { r.events[0].ID = 9 },             // field change
		func(r *Recorder) { r.events[1].Slot = 13 },          // slot change
		func(r *Recorder) { r.events[1].Stage = StageReply }, // stage change
		func(r *Recorder) { r.events[0].Actor = 5 },          // actor change
		func(r *Recorder) { r.events[0].Arg = 4 },            // arg change
		func(r *Recorder) { r.dropped = 1 },                  // drop count
	}
	for i, p := range perturb {
		r := base()
		p(r)
		if r.Digest() == d0 {
			t.Errorf("perturbation %d not visible in digest", i)
		}
	}
	if base().Digest() != d0 {
		t.Error("digest not deterministic")
	}
}

func TestEmitZeroAlloc(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		nilRec.Emit(1, 2, StageIssue, 3, 4)
	}); n != 0 {
		t.Errorf("disabled Emit allocates %v/op, want 0", n)
	}
	r := NewRecorder(16)
	slot := sim.Slot(0)
	if n := testing.AllocsPerRun(100, func() {
		r.Emit(ComposeID(1, slot), slot, StageBankService, 1, 4)
		slot++
	}); n != 0 {
		t.Errorf("enabled Emit allocates %v/op, want 0 (ring is preallocated)", n)
	}
	// Wrapping emits must not allocate either.
	if n := testing.AllocsPerRun(100, func() {
		r.Emit(ComposeID(2, slot), slot, StageHop, 2, 0)
		slot++
	}); n != 0 {
		t.Errorf("wrapping Emit allocates %v/op, want 0", n)
	}
}

func TestRecorderStateRoundTrip(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ { // wraps: dropped=2
		r.Emit(ComposeID(i, sim.Slot(10+i)), sim.Slot(10+i), StageIssue, int32(i), int64(i))
	}
	enc := sim.NewStateEncoder()
	r.SaveState(enc)
	if enc.Err() != nil {
		t.Fatalf("encode: %v", enc.Err())
	}

	fresh := NewRecorder(4)
	dec := sim.NewStateDecoder(enc.Bytes())
	fresh.LoadState(dec)
	if dec.Err() != nil {
		t.Fatalf("decode: %v", dec.Err())
	}
	if fresh.Digest() != r.Digest() {
		t.Error("restored recorder digests differently")
	}
	if fresh.Dropped() != r.Dropped() {
		t.Errorf("restored dropped %d, want %d", fresh.Dropped(), r.Dropped())
	}

	// Capacity mismatch must fail loudly, not silently truncate.
	small := NewRecorder(2)
	dec = sim.NewStateDecoder(enc.Bytes())
	small.LoadState(dec)
	if dec.Err() == nil {
		t.Error("capacity mismatch not rejected")
	}
}

func TestRecorderStateRejectsBadStage(t *testing.T) {
	enc := sim.NewStateEncoder()
	enc.Int(4)                     // capacity
	enc.U64(0)                     // dropped
	enc.Int(1)                     // count
	enc.U64(1)                     // id
	enc.Slot(2)                    // slot
	enc.U64(uint64(numStages) + 3) // stage out of range
	enc.I64(0)                     // actor
	enc.I64(0)                     // arg
	r := NewRecorder(4)
	dec := sim.NewStateDecoder(enc.Bytes())
	r.LoadState(dec)
	if dec.Err() == nil {
		t.Error("out-of-range stage accepted")
	}
}
