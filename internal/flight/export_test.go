package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cfm/internal/sim"
)

func TestWriteJSONLDeterministicAndValid(t *testing.T) {
	evs := fullSpan()
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, evs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSONL export not byte-deterministic")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != len(evs) {
		t.Fatalf("%d lines for %d events", len(lines), len(evs))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		for _, key := range []string{"slot", "id", "stage", "actor", "arg"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("line %d missing %q", i, key)
			}
		}
	}
	if !strings.Contains(lines[0], `"stage":"issue"`) {
		t.Errorf("first line should be the issue stage: %s", lines[0])
	}
}

func TestWriteChromeTraceValidAndDeterministic(t *testing.T) {
	evs := fullSpan()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, evs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Chrome trace export not byte-deterministic")
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	// 3 process_name metadata records + one X record per event.
	meta, complete := 0, 0
	for _, te := range doc.TraceEvents {
		switch te.Ph {
		case "M":
			meta++
		case "X":
			complete++
		default:
			t.Errorf("unexpected phase %q", te.Ph)
		}
	}
	if meta != 3 {
		t.Errorf("%d metadata records, want 3 (processors/network/banks)", meta)
	}
	if complete != len(evs) {
		t.Errorf("%d complete events, want %d", complete, len(evs))
	}
	// Track routing: hop → network pid, bank-service → banks pid.
	for _, te := range doc.TraceEvents {
		switch te.Name {
		case "hop":
			if te.Pid != trackNetwork {
				t.Errorf("hop on pid %d, want %d", te.Pid, trackNetwork)
			}
		case "bank-service":
			if te.Pid != trackBanks {
				t.Errorf("bank-service on pid %d, want %d", te.Pid, trackBanks)
			}
		case "issue", "retire":
			if te.Ph == "X" && te.Pid != trackProcessors {
				t.Errorf("%s on pid %d, want %d", te.Name, te.Pid, trackProcessors)
			}
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export not valid JSON: %v", err)
	}
}

func TestWaterfall(t *testing.T) {
	evs := fullSpan()
	id := evs[0].ID
	out := Waterfall(evs, id)
	for _, want := range []string{"issue", "hop", "bank-service", "retire",
		"total 10 slots = queue 4 + service 4 + network 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	if out != Waterfall(evs, id) {
		t.Error("waterfall not deterministic")
	}
	if got := Waterfall(evs, 0xdead); !strings.Contains(got, "no recorded events") {
		t.Errorf("missing-ID waterfall: %q", got)
	}
	// Single-event span: degenerate time range must not divide by zero.
	one := []Event{{ID: 7, Slot: 3, Stage: StageIssue}}
	if got := Waterfall(one, 7); !strings.Contains(got, "issue") {
		t.Errorf("single-event waterfall: %q", got)
	}
}

func TestWindow(t *testing.T) {
	var evs []Event
	for s := sim.Slot(0); s < 20; s++ {
		evs = append(evs, Event{ID: uint64(s), Slot: s, Stage: StageHop})
	}
	w := Window(evs, 10, 2)
	if len(w) != 5 {
		t.Fatalf("window has %d events, want 5", len(w))
	}
	for _, ev := range w {
		if ev.Slot < 8 || ev.Slot > 12 {
			t.Errorf("slot %d outside window [8,12]", ev.Slot)
		}
	}
	if Window(evs, 100, 3) != nil {
		t.Error("empty window not nil")
	}
}
