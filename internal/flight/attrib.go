package flight

import (
	"cfm/internal/metrics"
	"cfm/internal/sim"
	"cfm/internal/stats"
)

// Latency attribution: assemble raw stage events into per-access spans
// and decompose each span's end-to-end latency into the paper's three
// terms — queueing, service, and network transit. The paper's central
// claim is about the first term: a conflict-free memory eliminates
// bank-conflict queueing, so its accesses should decompose into
// network + fixed service with a zero queue component, while the
// conventional design's queue term grows without bound as the access
// rate approaches saturation (§3.4, Figs. 3.13–3.15).

// Span is one access's events, in stream (and therefore slot) order.
type Span struct {
	ID     uint64
	Events []Event
}

// Spans groups an event stream by access ID, preserving first-seen
// order — deterministic for a deterministic stream, no map iteration.
func Spans(events []Event) []Span {
	index := make(map[uint64]int, len(events))
	var spans []Span
	for _, ev := range events {
		i, ok := index[ev.ID]
		if !ok {
			i = len(spans)
			index[ev.ID] = i
			spans = append(spans, Span{ID: ev.ID})
		}
		spans[i].Events = append(spans[i].Events, ev)
	}
	return spans
}

// Breakdown is one span's latency decomposition.
type Breakdown struct {
	ID     uint64
	Issue  sim.Slot // slot of the opening stage (issue or net-inject)
	Retire sim.Slot // slot of the closing retire
	// Total = Retire − Issue. Queue = Total − Service − Network: the
	// slots spent neither in transit nor being served — module busy
	// waits, retry backoffs, ATT defers, cache retries.
	Total, Queue, Service, Network int64
	Retries                        int64 // bank-enqueue + ATT defer/retry + cache-miss repeats
	Complete                       bool  // span has both an opening stage and a retire
}

// Decompose attributes one span's latency. Attribution rules:
//
//   - network: one slot per hop and per inject (transit is one column
//     per slot in every modeled network);
//   - service: the Arg of each bank-service stage when positive (the
//     component knows its service time), else one slot per visit;
//   - queue: the remainder — everything the access spent waiting.
//
// Spans without an opening stage or a retire (truncated by the ring,
// or still in flight) report Complete=false and only count structure.
func Decompose(sp Span) Breakdown {
	bd := Breakdown{ID: sp.ID}
	opened, retired := false, false
	for _, ev := range sp.Events {
		switch ev.Stage {
		case StageIssue, StageNetInject:
			if !opened {
				bd.Issue = ev.Slot
				opened = true
			}
		case StageHop:
			bd.Network++
		case StageBankService:
			if ev.Arg > 0 {
				bd.Service += ev.Arg
			} else {
				bd.Service++
			}
		case StageBankEnqueue, StageATTDefer, StageATTRetry, StageCacheMiss:
			bd.Retries++
		case StageRetire:
			bd.Retire = ev.Slot
			retired = true
		}
	}
	if opened && retired && bd.Retire >= bd.Issue {
		bd.Complete = true
		bd.Total = int64(bd.Retire - bd.Issue)
		bd.Queue = bd.Total - bd.Service - bd.Network
		if bd.Queue < 0 {
			bd.Queue = 0
		}
	}
	return bd
}

// DecomposeAll assembles spans and decomposes the complete ones.
func DecomposeAll(events []Event) []Breakdown {
	var out []Breakdown
	for _, sp := range Spans(events) {
		if bd := Decompose(sp); bd.Complete {
			out = append(out, bd)
		}
	}
	return out
}

// TermSummary summarizes one latency term across spans.
type TermSummary struct {
	N             int64
	Mean          float64
	P50, P95, P99 int64
}

// summarizeTerm builds a histogram of one term and reads its quantiles
// via stats.Percentile.
func summarizeTerm(bds []Breakdown, term func(Breakdown) int64) TermSummary {
	h := stats.NewHistogram(1)
	sum := int64(0)
	for _, bd := range bds {
		v := term(bd)
		h.Add(int(v))
		sum += v
	}
	ts := TermSummary{N: h.Total()}
	if ts.N == 0 {
		return ts
	}
	ts.Mean = float64(sum) / float64(ts.N)
	ts.P50 = int64(stats.Percentile(h, 50))
	ts.P95 = int64(stats.Percentile(h, 95))
	ts.P99 = int64(stats.Percentile(h, 99))
	return ts
}

// Attribution is the per-design decomposition summary behind the
// `cfmsim efficiency` queueing-delay table.
type Attribution struct {
	Spans                          int64
	Queue, Service, Network, Total TermSummary
}

// Attribute summarizes the decomposition of every complete span.
func Attribute(events []Event) Attribution {
	bds := DecomposeAll(events)
	return Attribution{
		Spans:   int64(len(bds)),
		Queue:   summarizeTerm(bds, func(b Breakdown) int64 { return b.Queue }),
		Service: summarizeTerm(bds, func(b Breakdown) int64 { return b.Service }),
		Network: summarizeTerm(bds, func(b Breakdown) int64 { return b.Network }),
		Total:   summarizeTerm(bds, func(b Breakdown) int64 { return b.Total }),
	}
}

// Record feeds the decomposition into registry histograms named
// <prefix>_span_{queue,service,network,total}_cycles (label-free, per
// the registry's histogram naming rule), binned at one slot. A nil
// registry records nothing. Call it after the run, from the harness —
// never from a tick path — so run-time metric state stays identical
// with and without a recorder attached.
func Record(reg *metrics.Registry, prefix string, events []Event) {
	if reg == nil {
		return
	}
	q := reg.Histogram(prefix+"_span_queue_cycles", 1)
	s := reg.Histogram(prefix+"_span_service_cycles", 1)
	n := reg.Histogram(prefix+"_span_network_cycles", 1)
	t := reg.Histogram(prefix+"_span_total_cycles", 1)
	for _, bd := range DecomposeAll(events) {
		q.Observe(bd.Queue)
		s.Observe(bd.Service)
		n.Observe(bd.Network)
		t.Observe(bd.Total)
	}
}
