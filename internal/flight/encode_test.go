package flight

import (
	"bytes"
	"testing"

	"cfm/internal/sim"
)

func sampleEvents() []Event {
	return []Event{
		{ID: ComposeID(0, 5), Slot: 5, Stage: StageIssue, Actor: 0, Arg: 0},
		{ID: ComposeID(0, 5), Slot: 6, Stage: StageNetInject, Actor: 0, Arg: 0},
		{ID: ComposeID(0, 5), Slot: 7, Stage: StageHop, Actor: 1, Arg: 0},
		{ID: ComposeID(0, 5), Slot: 8, Stage: StageBankService, Actor: 3, Arg: 4},
		{ID: ComposeID(0, 5), Slot: 12, Stage: StageRetire, Actor: 0, Arg: 7},
		{ID: ComposeID(2, 6), Slot: 6, Stage: StageIssue, Actor: 2, Arg: -1},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	evs := sampleEvents()
	data := Encode(evs)
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(back), len(evs))
	}
	for i := range evs {
		if back[i] != evs[i] {
			t.Errorf("event %d: got %v, want %v", i, back[i], evs[i])
		}
	}
	// Determinism: encoding is a pure function of the stream.
	if !bytes.Equal(data, Encode(evs)) {
		t.Error("Encode not deterministic")
	}
}

func TestEncodeEmpty(t *testing.T) {
	back, err := Decode(Encode(nil))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if len(back) != 0 {
		t.Errorf("decoded %d events from empty stream", len(back))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := Encode(sampleEvents())
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", good[:4]},
		{"bad magic", append([]byte("XXMSPAN1"), good[8:]...)},
		{"truncated body", good[:len(good)-3]},
		{"count too large", func() []byte {
			b := append([]byte(nil), good...)
			b[8] = 0xff // inflate the count field
			return b
		}()},
		{"bad stage tag", func() []byte {
			b := append([]byte(nil), good...)
			b[len(spanMagic)+4+16] = 0xee // first event's stage byte
			return b
		}()},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); err == nil {
			t.Errorf("%s: corruption accepted", c.name)
		}
	}
}

func TestDecodeNegativeSlotAndArg(t *testing.T) {
	evs := []Event{{ID: 1, Slot: sim.Slot(-9), Stage: StageRetire, Actor: -2, Arg: -1234}}
	back, err := Decode(Encode(evs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back[0] != evs[0] {
		t.Errorf("negative fields mangled: got %v, want %v", back[0], evs[0])
	}
}

func FuzzSpanRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(spanMagic))
	f.Add(Encode(nil))
	f.Add(Encode(sampleEvents()))
	f.Add(append([]byte("XXMSPAN1"), Encode(nil)[8:]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := Decode(data)
		if err != nil {
			return // rejected input must simply not panic
		}
		// Accepted input must survive a re-encode/re-decode cycle
		// byte-identically: Decode accepts only canonical framing.
		re := Encode(evs)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", re, data)
		}
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		for i := range evs {
			if back[i] != evs[i] {
				t.Fatalf("event %d changed across round trip", i)
			}
		}
	})
}
