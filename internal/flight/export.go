package flight

import (
	"fmt"
	"io"
	"strings"
)

// Exporters for recorded span streams. Both writers hand-format their
// JSON with a fixed field order so a given event stream always produces
// byte-identical output — the property the golden-file check in CI
// pins, and the same discipline as the metrics Prometheus/JSONL
// exporters.

// Chrome trace-event track (pid) assignment: one process per component
// family, one thread per instance (bank, column, processor), so
// Perfetto and chrome://tracing lay the stages out on the tracks the
// paper's pipeline diagram implies.
const (
	trackProcessors = 1
	trackNetwork    = 2
	trackBanks      = 3
)

// trackOf maps a stage to its Chrome trace process track.
func trackOf(st Stage) int {
	switch st {
	case StageNetInject, StageHop:
		return trackNetwork
	case StageBankEnqueue, StageBankService:
		return trackBanks
	default:
		return trackProcessors
	}
}

// WriteJSONL writes one JSON object per event, in stream order: the
// grep-friendly export behind `-spans-out spans.jsonl`.
func WriteJSONL(w io.Writer, events []Event) error {
	for _, ev := range events {
		_, err := fmt.Fprintf(w, `{"slot":%d,"id":"%016x","stage":%q,"actor":%d,"arg":%d}`+"\n",
			int64(ev.Slot), ev.ID, ev.Stage.String(), ev.Actor, ev.Arg)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace writes the stream in the Chrome trace-event JSON
// format (the `-spans-out spans.json` export): an object with a
// traceEvents array of complete ("X") events, one slot = one
// microsecond, preceded by process_name metadata naming the
// processors/network/banks tracks. The file loads directly in Perfetto
// (ui.perfetto.dev) and chrome://tracing.
func WriteChromeTrace(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`+"\n"); err != nil {
		return err
	}
	names := []struct {
		pid  int
		name string
	}{
		{trackProcessors, "processors"},
		{trackNetwork, "network"},
		{trackBanks, "banks"},
	}
	for i, n := range names {
		sep := ","
		if i == len(names)-1 && len(events) == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}%s`+"\n", n.pid, n.name, sep); err != nil {
			return err
		}
	}
	for i, ev := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(w,
			`{"name":%q,"cat":"access","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"id":"%016x","arg":%d}}%s`+"\n",
			ev.Stage.String(), int64(ev.Slot), durOf(ev), trackOf(ev.Stage), ev.Actor, ev.ID, ev.Arg, sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// durOf picks a complete-event duration: stages that carry a duration
// in Arg (bank service, known queue waits) render that wide; the rest
// render one slot wide.
func durOf(ev Event) int64 {
	switch ev.Stage {
	case StageBankService, StageBankEnqueue:
		if ev.Arg > 0 {
			return ev.Arg
		}
	}
	return 1
}

// Waterfall renders one access's timeline as ASCII — the `cfmsim
// waterfall` view. Rows are the span's events in stream order; the bar
// column places each stage between the span's first and last slot.
func Waterfall(events []Event, id uint64) string {
	var span []Event
	for _, ev := range events {
		if ev.ID == id {
			span = append(span, ev)
		}
	}
	if len(span) == 0 {
		return fmt.Sprintf("access %016x: no recorded events\n", id)
	}
	first, last := span[0].Slot, span[0].Slot
	for _, ev := range span {
		if ev.Slot < first {
			first = ev.Slot
		}
		if ev.Slot > last {
			last = ev.Slot
		}
	}
	const barWidth = 48
	scale := func(s int64) int {
		if last == first {
			return 0
		}
		return int(s * int64(barWidth-1) / int64(last-first))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "access %016x — actor %d, issued slot %d, %d events over slots %d..%d\n\n",
		id, IDActor(id), IDIssued(id), len(span), first, last)
	for _, ev := range span {
		off := scale(int64(ev.Slot - first))
		bar := strings.Repeat(" ", off) + "█" + strings.Repeat(" ", barWidth-1-off)
		fmt.Fprintf(&b, "  %-12s │%s│ slot %-8d +%-6d actor=%-4d arg=%d\n",
			ev.Stage, bar, int64(ev.Slot), int64(ev.Slot-first), ev.Actor, ev.Arg)
	}
	bd := Decompose(Span{ID: id, Events: span})
	if bd.Complete {
		fmt.Fprintf(&b, "\n  total %d slots = queue %d + service %d + network %d\n",
			bd.Total, bd.Queue, bd.Service, bd.Network)
	}
	return b.String()
}
