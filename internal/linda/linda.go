// Package linda implements the Linda coordination language reviewed in
// §6.1.3 (Fig. 6.1): concurrent processes communicate through a shared
// tuple space with four primitives —
//
//	out  places a tuple in tuple space
//	in   matches a tuple and removes it (blocking)
//	rd   matches a tuple and returns a copy (blocking)
//	eval creates an active tuple (a process whose result is out-ed)
//
// It exists as the comparison baseline for the resource binding paradigm:
// the dissertation's critique — Linda's decoupling forces an associative
// SEARCH of the tuple space on every match, and the lack of
// sender/receiver knowledge defeats deadlock detection — is made
// measurable here by counting tuple scans (Scans), which the binding
// runtime's active-list check avoids growing with data size.
//
//cfm:concurrency-ok Linda processes are real goroutines blocking on tuple matches; the package never touches simulated state
package linda

import (
	"fmt"
	"sync"
)

// Tuple is an ordered collection of data items identified by content.
type Tuple []any

// wildcard is the formal-parameter marker for match patterns.
type wildcard struct{}

// W matches any value in its position (a Linda "formal").
var W = wildcard{}

// Matches reports whether a concrete tuple matches a pattern: same
// length, and each pattern position is either W or equal to the tuple's
// actual value.
func Matches(pattern, tuple Tuple) bool {
	if len(pattern) != len(tuple) {
		return false
	}
	for i, p := range pattern {
		if _, any := p.(wildcard); any {
			continue
		}
		if p != tuple[i] {
			return false
		}
	}
	return true
}

// Space is a tuple space, safe for concurrent use.
type Space struct {
	mu     sync.Mutex
	cond   *sync.Cond
	tuples []Tuple
	evals  sync.WaitGroup

	// Scans counts tuples examined during matching — the search overhead
	// §6.1.3 charges against Linda ("its complexity is some order of the
	// tuple space size").
	Scans int64
	// Outs and Ins count completed operations.
	Outs, Ins, Rds int64
}

// NewSpace returns an empty tuple space.
func NewSpace() *Space {
	s := &Space{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Out places a tuple in tuple space.
func (s *Space) Out(t Tuple) {
	if len(t) == 0 {
		panic("linda: empty tuple")
	}
	for _, v := range t {
		if _, any := v.(wildcard); any {
			panic("linda: out of a tuple containing a formal")
		}
	}
	s.mu.Lock()
	s.tuples = append(s.tuples, append(Tuple(nil), t...))
	s.Outs++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// match scans for a pattern match; remove extracts it. Caller holds mu.
func (s *Space) match(pattern Tuple, remove bool) (Tuple, bool) {
	for i, t := range s.tuples {
		s.Scans++
		if Matches(pattern, t) {
			out := append(Tuple(nil), t...)
			if remove {
				s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
			}
			return out, true
		}
	}
	return nil, false
}

// In matches a tuple and removes it, blocking until one is available.
func (s *Space) In(pattern Tuple) Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t, ok := s.match(pattern, true); ok {
			s.Ins++
			return t
		}
		s.cond.Wait()
	}
}

// InNB is the non-blocking in (Linda's inp).
func (s *Space) InNB(pattern Tuple) (Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.match(pattern, true)
	if ok {
		s.Ins++
	}
	return t, ok
}

// Rd matches a tuple and returns a copy, blocking until one is available.
func (s *Space) Rd(pattern Tuple) Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t, ok := s.match(pattern, false); ok {
			s.Rds++
			return t
		}
		s.cond.Wait()
	}
}

// RdNB is the non-blocking rd (Linda's rdp).
func (s *Space) RdNB(pattern Tuple) (Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.match(pattern, false)
	if ok {
		s.Rds++
	}
	return t, ok
}

// Eval creates an active tuple: f runs in its own process and its result
// is placed in tuple space when it completes.
func (s *Space) Eval(f func() Tuple) {
	s.evals.Add(1)
	go func() {
		defer s.evals.Done()
		s.Out(f())
	}()
}

// WaitEvals blocks until every active tuple has turned passive.
func (s *Space) WaitEvals() { s.evals.Wait() }

// Len returns the number of passive tuples currently in the space.
func (s *Space) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tuples)
}

// String renders the space for debugging.
func (s *Space) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("tuple space with %d tuples", len(s.tuples))
}

// DiningTable is the Fig. 6.4 setup: num chopstick tuples and num−1 room
// tickets — Linda's way of preventing the dining-philosophers deadlock is
// the explicit ticket arrangement the programmer must remember, in
// contrast to data binding's atomic multi-chopstick region (Fig. 6.5).
func DiningTable(s *Space, num int) {
	if num < 2 {
		panic(fmt.Sprintf("linda: %d philosophers", num))
	}
	for i := 0; i < num; i++ {
		s.Out(Tuple{"chopstick", i})
		if i < num-1 {
			s.Out(Tuple{"room ticket"})
		}
	}
}

// Philosopher runs one Fig. 6.4 philosopher for the given number of
// meals: acquire a room ticket, take both chopsticks one at a time, eat,
// return everything.
func Philosopher(s *Space, i, num, meals int, eat func()) {
	for m := 0; m < meals; m++ {
		s.In(Tuple{"room ticket"})
		s.In(Tuple{"chopstick", i})
		s.In(Tuple{"chopstick", (i + 1) % num})
		if eat != nil {
			eat()
		}
		s.Out(Tuple{"chopstick", i})
		s.Out(Tuple{"chopstick", (i + 1) % num})
		s.Out(Tuple{"room ticket"})
	}
}
