package linda

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestMatches(t *testing.T) {
	cases := []struct {
		pattern, tuple Tuple
		want           bool
	}{
		{Tuple{"x", 5}, Tuple{"x", 5}, true},
		{Tuple{"x", 5}, Tuple{"x", 6}, false},
		{Tuple{"x", W}, Tuple{"x", 6}, true},
		{Tuple{W, W}, Tuple{"y", 3.5}, true},
		{Tuple{"x"}, Tuple{"x", 5}, false},
		{Tuple{"x", 5, W}, Tuple{"x", 5}, false},
	}
	for i, c := range cases {
		if got := Matches(c.pattern, c.tuple); got != c.want {
			t.Errorf("case %d: Matches(%v, %v) = %v, want %v", i, c.pattern, c.tuple, got, c.want)
		}
	}
}

func TestOutInRoundTrip(t *testing.T) {
	s := NewSpace()
	s.Out(Tuple{"x", 5, 3.5})
	got := s.In(Tuple{"x", W, W})
	if got[1] != 5 || got[2] != 3.5 {
		t.Fatalf("In returned %v", got)
	}
	if s.Len() != 0 {
		t.Fatal("In did not remove the tuple")
	}
}

func TestRdLeavesTuple(t *testing.T) {
	s := NewSpace()
	s.Out(Tuple{"y", 1})
	if got := s.Rd(Tuple{"y", W}); got[1] != 1 {
		t.Fatalf("Rd returned %v", got)
	}
	if s.Len() != 1 {
		t.Fatal("Rd removed the tuple")
	}
}

func TestNonBlockingVariants(t *testing.T) {
	s := NewSpace()
	if _, ok := s.InNB(Tuple{"absent"}); ok {
		t.Fatal("InNB matched nothing")
	}
	if _, ok := s.RdNB(Tuple{"absent"}); ok {
		t.Fatal("RdNB matched nothing")
	}
	s.Out(Tuple{"present", 9})
	if got, ok := s.InNB(Tuple{"present", W}); !ok || got[1] != 9 {
		t.Fatalf("InNB = %v, %v", got, ok)
	}
}

func TestInBlocksUntilOut(t *testing.T) {
	s := NewSpace()
	got := make(chan Tuple, 1)
	go func() { got <- s.In(Tuple{"later", W}) }()
	select {
	case <-got:
		t.Fatal("In returned before Out")
	case <-time.After(20 * time.Millisecond):
	}
	s.Out(Tuple{"later", 42})
	select {
	case tu := <-got:
		if tu[1] != 42 {
			t.Fatalf("got %v", tu)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("In never woke")
	}
}

func TestInConsumesExactlyOnce(t *testing.T) {
	// N competing In's over N tuples: each tuple consumed exactly once.
	s := NewSpace()
	const n = 20
	for i := 0; i < n; i++ {
		s.Out(Tuple{"job", i})
	}
	seen := make([]atomic.Int32, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tu := s.In(Tuple{"job", W})
			seen[tu[1].(int)].Add(1)
		}()
	}
	wg.Wait()
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("job %d consumed %d times", i, seen[i].Load())
		}
	}
}

func TestEval(t *testing.T) {
	s := NewSpace()
	s.Eval(func() Tuple { return Tuple{"result", 7 * 6} })
	got := s.In(Tuple{"result", W})
	if got[1] != 42 {
		t.Fatalf("eval result %v", got)
	}
	s.WaitEvals()
}

func TestPanics(t *testing.T) {
	s := NewSpace()
	for name, fn := range map[string]func(){
		"empty":  func() { s.Out(Tuple{}) },
		"formal": func() { s.Out(Tuple{"x", W}) },
		"table":  func() { DiningTable(s, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestDiningPhilosophersFig64: the Fig. 6.4 Linda solution terminates —
// the num−1 room tickets prevent the circular wait.
func TestDiningPhilosophersFig64(t *testing.T) {
	const num, meals = 5, 10
	s := NewSpace()
	DiningTable(s, num)
	if s.Len() != num+num-1 {
		t.Fatalf("table has %d tuples, want %d", s.Len(), num+num-1)
	}
	eaten := make([]atomic.Int32, num)
	var wg sync.WaitGroup
	for i := 0; i < num; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			Philosopher(s, i, num, meals, func() { eaten[i].Add(1) })
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("philosophers deadlocked despite room tickets")
	}
	for i := range eaten {
		if eaten[i].Load() != meals {
			t.Fatalf("philosopher %d ate %d", i, eaten[i].Load())
		}
	}
	// The table is restored afterwards.
	if s.Len() != num+num-1 {
		t.Fatalf("table left with %d tuples", s.Len())
	}
}

// TestScanOverheadGrowsWithSpaceSize quantifies §6.1.3's critique: the
// cost of matching grows with the number of resident tuples, because
// every in/rd must search the space.
func TestScanOverheadGrowsWithSpaceSize(t *testing.T) {
	scansFor := func(resident int) int64 {
		s := NewSpace()
		for i := 0; i < resident; i++ {
			s.Out(Tuple{"ballast", i})
		}
		s.Out(Tuple{"target", 1})
		before := s.Scans
		s.Rd(Tuple{"target", W})
		return s.Scans - before
	}
	small, large := scansFor(10), scansFor(1000)
	if large < 50*small {
		t.Fatalf("scan cost did not grow with space size: %d vs %d", small, large)
	}
}

func TestMatchesProperty(t *testing.T) {
	// A pattern of all wildcards matches any same-length tuple.
	f := func(vals []int) bool {
		if len(vals) == 0 {
			return true
		}
		tu := make(Tuple, len(vals))
		pat := make(Tuple, len(vals))
		for i, v := range vals {
			tu[i] = v
			pat[i] = W
		}
		return Matches(pat, tu) && Matches(tu, tu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSharedCounterSimulation: the shared-memory simulation of §6.1.3 —
// a variable protected by holding its tuple.
func TestSharedCounterSimulation(t *testing.T) {
	s := NewSpace()
	s.Out(Tuple{"counter", 0})
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tu := s.In(Tuple{"counter", W})
				s.Out(Tuple{"counter", tu[1].(int) + 1})
			}
		}()
	}
	wg.Wait()
	tu := s.In(Tuple{"counter", W})
	if tu[1] != workers*rounds {
		t.Fatalf("counter = %v, want %d", tu[1], workers*rounds)
	}
}
