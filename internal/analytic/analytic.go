// Package analytic implements the closed-form performance models of §3.4:
// the memory access efficiency of conventional interleaved memory systems
// (§3.4.1) and of partially conflict-free CFM systems (§3.4.2). These are
// the equations plotted in Figs. 3.13, 3.14, and 3.15.
//
// Model assumptions (verbatim from the dissertation): n processors
// uniformly generate block accesses at rate r per CPU cycle against m
// memory modules; each block access occupies its module for β CPU cycles;
// a failed access retries after an average of g = β/2 cycles (the g/2
// expectation built into M(r)); network contention is NOT modelled, so
// real conventional systems are worse than E(r) predicts.
package analytic

import "fmt"

// ConventionalModel is the §3.4.1 efficiency model.
type ConventionalModel struct {
	Processors int // n
	Modules    int // m
	BlockTime  int // β
}

// Validate reports a descriptive error for an unusable model.
func (c ConventionalModel) Validate() error {
	if c.Processors < 1 || c.Modules < 1 || c.BlockTime < 1 {
		return fmt.Errorf("analytic: invalid model %+v", c)
	}
	return nil
}

// ConflictProbability returns P(r) = (n−1)·r·β / m: the probability that
// the target module is busy serving another processor's access.
func (c ConventionalModel) ConflictProbability(r float64) float64 {
	p := float64(c.Processors-1) * r * float64(c.BlockTime) / float64(c.Modules)
	return clampProb(p)
}

// ExpectedRetries returns P/(1−P), the expected number of retries per
// access.
func (c ConventionalModel) ExpectedRetries(r float64) float64 {
	p := c.ConflictProbability(r)
	if p >= 1 {
		return 1e18 // saturated: retries diverge
	}
	return p / (1 - p)
}

// ExpectedAccessTime returns M(r) = (2−P)/(2−2P) · β, the expected time
// to complete one access including retry delays.
func (c ConventionalModel) ExpectedAccessTime(r float64) float64 {
	p := c.ConflictProbability(r)
	if p >= 1 {
		return 1e18
	}
	return (2 - p) / (2 - 2*p) * float64(c.BlockTime)
}

// Efficiency returns E(r) = β / M(r) = (2−2P)/(2−P)
//
//	= (2m − 2(n−1)rβ) / (2m − (n−1)rβ).
func (c ConventionalModel) Efficiency(r float64) float64 {
	p := c.ConflictProbability(r)
	return (2 - 2*p) / (2 - p)
}

// PartialModel is the §3.4.2 efficiency model for partially conflict-free
// systems: n processors in m conflict-free clusters, locality λ.
type PartialModel struct {
	Processors int // n
	Modules    int // m (= clusters)
	BlockTime  int // β
}

// Validate reports a descriptive error for an unusable model.
func (c PartialModel) Validate() error {
	if c.Processors < 1 || c.Modules < 2 || c.BlockTime < 1 {
		return fmt.Errorf("analytic: invalid partial model %+v (need m >= 2)", c)
	}
	return nil
}

// P1 returns the probability that a time slot is used by a remote access:
// P₁ = (1−λ)·r·β.
func (c PartialModel) P1(r, lambda float64) float64 {
	return clampProb((1 - lambda) * r * float64(c.BlockTime))
}

// P2 returns the probability that a remote access encounters a conflict,
// P₂ = (1 − (1−λ)/m)·r·β·m/(m−1)·... — the dissertation prints it as
// P₂ = (1 − (1−λ)/m)·r·β/(1 − 1/m) and then combines it with P₁ into the
// closed form of Combined; P2 is recovered from that closed form so the
// identity P(r,λ) = P₁·λ + P₂·(1−λ) holds exactly.
func (c PartialModel) P2(r, lambda float64) float64 {
	if lambda >= 1 {
		return 0
	}
	comb := c.Combined(r, lambda)
	p1 := c.P1(r, lambda)
	return clampProb((comb - p1*lambda) / (1 - lambda))
}

// Combined returns the dissertation's combined conflict probability
//
//	P(r,λ) = (−mλ² + 2λ + m − 2)/(m−1) · r·β.
func (c PartialModel) Combined(r, lambda float64) float64 {
	m := float64(c.Modules)
	num := -m*lambda*lambda + 2*lambda + m - 2
	return clampProb(num / (m - 1) * r * float64(c.BlockTime))
}

// Efficiency returns E(r,λ) = (2 − 2P(r,λ)) / (2 − P(r,λ)).
func (c PartialModel) Efficiency(r, lambda float64) float64 {
	p := c.Combined(r, lambda)
	return (2 - 2*p) / (2 - p)
}

// clampProb bounds a probability into [0, 1].
func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Point is one (rate, efficiency) sample of a plotted curve.
type Point struct {
	Rate       float64
	Efficiency float64
}

// Series is a named efficiency curve.
type Series struct {
	Label  string
	Points []Point
}

// RateSweep returns steps+1 rates spanning [0, max], the x-axis of
// Figs. 3.13–3.15 (max = 0.06 in the dissertation).
func RateSweep(max float64, steps int) []float64 {
	out := make([]float64, steps+1)
	for i := range out {
		out[i] = max * float64(i) / float64(steps)
	}
	return out
}

// Fig313 generates the two curves of Fig. 3.13: a conflict-free system
// (E ≈ 1) versus a conventional system with n = 8, m = 8, 16-word blocks,
// β = 17.
func Fig313(steps int) []Series {
	conv := ConventionalModel{Processors: 8, Modules: 8, BlockTime: 17}
	rates := RateSweep(0.06, steps)
	cf := Series{Label: "Conflict-free"}
	cv := Series{Label: "Conventional"}
	for _, r := range rates {
		cf.Points = append(cf.Points, Point{Rate: r, Efficiency: 1.0})
		cv.Points = append(cv.Points, Point{Rate: r, Efficiency: conv.Efficiency(r)})
	}
	return []Series{cf, cv}
}

// Fig314 generates the curves of Fig. 3.14: a partially conflict-free
// system with n = 64, m = 8, 16-word blocks, β = 17, at
// λ ∈ {0.9, 0.8, 0.7, 0.5}, against a conventional system with the same
// interconnect connectivity (64 modules).
func Fig314(steps int) []Series {
	return partialFigure(64, 8, 64, steps, []float64{0.9, 0.8, 0.7, 0.5})
}

// Fig315 generates the curves of Fig. 3.15: n = 128, m = 16, versus a
// conventional 128-processor, 128-module system.
func Fig315(steps int) []Series {
	return partialFigure(128, 16, 128, steps, []float64{0.9, 0.8, 0.7, 0.5})
}

func partialFigure(n, m, convModules, steps int, lambdas []float64) []Series {
	part := PartialModel{Processors: n, Modules: m, BlockTime: 17}
	conv := ConventionalModel{Processors: n, Modules: convModules, BlockTime: 17}
	rates := RateSweep(0.06, steps)
	var out []Series
	for _, lam := range lambdas {
		s := Series{Label: fmt.Sprintf("λ=%.1f", lam)}
		for _, r := range rates {
			s.Points = append(s.Points, Point{Rate: r, Efficiency: part.Efficiency(r, lam)})
		}
		out = append(out, s)
	}
	s := Series{Label: fmt.Sprintf("Conventional (%d modules)", convModules)}
	for _, r := range rates {
		s.Points = append(s.Points, Point{Rate: r, Efficiency: conv.Efficiency(r)})
	}
	out = append(out, s)
	return out
}
