package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConventionalValidate(t *testing.T) {
	if err := (ConventionalModel{Processors: 8, Modules: 8, BlockTime: 17}).Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	if err := (ConventionalModel{}).Validate(); err == nil {
		t.Fatal("zero model accepted")
	}
}

func TestConflictProbabilityFormula(t *testing.T) {
	// P(r) = (n−1)·r·β/m. For the Fig 3.13 system at r = 0.03:
	// P = 7·0.03·17/8 = 0.44625.
	m := ConventionalModel{Processors: 8, Modules: 8, BlockTime: 17}
	got := m.ConflictProbability(0.03)
	want := 7.0 * 0.03 * 17.0 / 8.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(0.03) = %v, want %v", got, want)
	}
}

func TestEfficiencyAtZeroRateIsOne(t *testing.T) {
	m := ConventionalModel{Processors: 8, Modules: 8, BlockTime: 17}
	if e := m.Efficiency(0); e != 1 {
		t.Fatalf("E(0) = %v, want 1", e)
	}
}

// TestFig313Anchor checks the conventional curve against a hand-computed
// anchor: at r = 0.06, P = 7·0.06·17/8 = 0.8925 and
// E = (2−1.785)/(2−0.8925) ≈ 0.1942 — the deep degradation visible at the
// right edge of Fig. 3.13.
func TestFig313Anchor(t *testing.T) {
	m := ConventionalModel{Processors: 8, Modules: 8, BlockTime: 17}
	got := m.Efficiency(0.06)
	want := (2 - 2*0.8925) / (2 - 0.8925)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("E(0.06) = %v, want %v", got, want)
	}
	if got > 0.2 || got < 0.19 {
		t.Fatalf("E(0.06) = %v, Fig 3.13 shows ≈0.19", got)
	}
}

func TestEfficiencyMonotoneDecreasing(t *testing.T) {
	f := func(nRaw, mRaw uint8, r1Raw, r2Raw uint16) bool {
		m := ConventionalModel{
			Processors: 2 + int(nRaw)%64,
			Modules:    1 + int(mRaw)%64,
			BlockTime:  17,
		}
		r1 := float64(r1Raw) / float64(1<<16) * 0.06
		r2 := float64(r2Raw) / float64(1<<16) * 0.06
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return m.Efficiency(r1) >= m.Efficiency(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedRetriesAndTime(t *testing.T) {
	m := ConventionalModel{Processors: 8, Modules: 8, BlockTime: 17}
	// At P = 0.5: retries = 1; M = 1.5/1 · 17 = 25.5.
	r := 0.5 * 8 / (7.0 * 17.0)
	if got := m.ExpectedRetries(r); math.Abs(got-1) > 1e-9 {
		t.Fatalf("retries = %v, want 1", got)
	}
	if got := m.ExpectedAccessTime(r); math.Abs(got-25.5) > 1e-9 {
		t.Fatalf("M = %v, want 25.5", got)
	}
	// E = β/M must agree with the closed form.
	if got, want := 17.0/m.ExpectedAccessTime(r), m.Efficiency(r); math.Abs(got-want) > 1e-12 {
		t.Fatalf("β/M = %v but E = %v", got, want)
	}
}

func TestSaturation(t *testing.T) {
	m := ConventionalModel{Processors: 64, Modules: 4, BlockTime: 17}
	// Rate high enough that P clamps to 1.
	if got := m.ExpectedRetries(1); got < 1e17 {
		t.Fatalf("saturated retries = %v, want divergence", got)
	}
	if got := m.ExpectedAccessTime(1); got < 1e17 {
		t.Fatalf("saturated M = %v, want divergence", got)
	}
	if got := m.Efficiency(1); got != 0 {
		t.Fatalf("saturated E = %v, want 0", got)
	}
}

func TestPartialValidate(t *testing.T) {
	if err := (PartialModel{Processors: 64, Modules: 8, BlockTime: 17}).Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	if err := (PartialModel{Processors: 64, Modules: 1, BlockTime: 17}).Validate(); err == nil {
		t.Fatal("m=1 accepted (combined form needs m >= 2)")
	}
}

func TestPartialCombinedFormula(t *testing.T) {
	// P(r,λ) = (−mλ²+2λ+m−2)/(m−1)·rβ. m=8, λ=0.5, r=0.04, β=17:
	// num = −8·0.25 + 1 + 6 = 5; P = 5/7·0.68 ≈ 0.4857.
	m := PartialModel{Processors: 64, Modules: 8, BlockTime: 17}
	got := m.Combined(0.04, 0.5)
	want := 5.0 / 7.0 * 0.04 * 17
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(0.04, 0.5) = %v, want %v", got, want)
	}
}

func TestPartialP1P2CombineExactly(t *testing.T) {
	f := func(lamRaw, rRaw uint16) bool {
		m := PartialModel{Processors: 64, Modules: 8, BlockTime: 17}
		lam := float64(lamRaw) / float64(1<<16)
		r := float64(rRaw) / float64(1<<16) * 0.05
		comb := m.Combined(r, lam)
		if comb >= 1 { // clamped region: identity does not apply
			return true
		}
		p1, p2 := m.P1(r, lam), m.P2(r, lam)
		return math.Abs(p1*lam+p2*(1-lam)-comb) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartialFullLocalityPerfect(t *testing.T) {
	m := PartialModel{Processors: 64, Modules: 8, BlockTime: 17}
	// λ = 1: the combined numerator is −m+2+m−2 = 0 ⇒ E = 1.
	if p := m.Combined(0.06, 1); p != 0 {
		t.Fatalf("P(r, λ=1) = %v, want 0", p)
	}
	if e := m.Efficiency(0.06, 1); e != 1 {
		t.Fatalf("E(r, λ=1) = %v, want 1", e)
	}
}

func TestPartialEfficiencyOrderedByLocality(t *testing.T) {
	// The visual ordering of Fig. 3.14: higher λ curves sit higher.
	m := PartialModel{Processors: 64, Modules: 8, BlockTime: 17}
	r := 0.04
	lams := []float64{0.3, 0.5, 0.7, 0.9}
	prev := -1.0
	for _, lam := range lams {
		e := m.Efficiency(r, lam)
		if e <= prev {
			t.Fatalf("E(λ=%v) = %v, not above %v", lam, e, prev)
		}
		prev = e
	}
}

// TestPartialBeatsConventionalFig314: the headline claim — at every
// plotted rate and λ ≥ 0.5, the partially conflict-free system's
// efficiency exceeds the same-connectivity conventional system's.
func TestPartialBeatsConventionalFig314(t *testing.T) {
	part := PartialModel{Processors: 64, Modules: 8, BlockTime: 17}
	conv := ConventionalModel{Processors: 64, Modules: 64, BlockTime: 17}
	for _, r := range RateSweep(0.06, 12)[1:] {
		for _, lam := range []float64{0.5, 0.7, 0.8, 0.9} {
			if pe, ce := part.Efficiency(r, lam), conv.Efficiency(r); pe <= ce {
				t.Fatalf("r=%v λ=%v: partial %v <= conventional %v", r, lam, pe, ce)
			}
		}
	}
}

func TestRateSweep(t *testing.T) {
	rs := RateSweep(0.06, 6)
	if len(rs) != 7 {
		t.Fatalf("len = %d, want 7", len(rs))
	}
	if rs[0] != 0 || math.Abs(rs[6]-0.06) > 1e-12 {
		t.Fatalf("endpoints %v, %v", rs[0], rs[6])
	}
}

func TestFig313Series(t *testing.T) {
	ss := Fig313(12)
	if len(ss) != 2 {
		t.Fatalf("%d series, want 2", len(ss))
	}
	if ss[0].Label != "Conflict-free" || ss[1].Label != "Conventional" {
		t.Fatalf("labels %q, %q", ss[0].Label, ss[1].Label)
	}
	for _, p := range ss[0].Points {
		if p.Efficiency != 1 {
			t.Fatal("conflict-free curve not flat at 1")
		}
	}
	last := ss[1].Points[len(ss[1].Points)-1]
	if last.Efficiency > 0.2 {
		t.Fatalf("conventional curve ends at %v, want < 0.2", last.Efficiency)
	}
}

func TestFig314And315Series(t *testing.T) {
	for figIdx, ss := range [][]Series{Fig314(12), Fig315(12)} {
		if len(ss) != 5 { // 4 λ curves + conventional
			t.Fatalf("fig %d: %d series, want 5", figIdx, len(ss))
		}
		conv := ss[4]
		for si := 0; si < 4; si++ {
			for pi := 1; pi < len(ss[si].Points); pi++ {
				if ss[si].Points[pi].Efficiency <= conv.Points[pi].Efficiency {
					t.Fatalf("fig %d series %q below conventional at r=%v",
						figIdx, ss[si].Label, ss[si].Points[pi].Rate)
				}
			}
		}
	}
}

func TestClampProb(t *testing.T) {
	if clampProb(-0.5) != 0 || clampProb(1.5) != 1 || clampProb(0.3) != 0.3 {
		t.Fatal("clampProb wrong")
	}
}
