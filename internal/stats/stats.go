// Package stats provides the statistics and text-rendering helpers used
// by the experiment harness: summary accumulators, ASCII tables in the
// style of the dissertation's tables, and ASCII line plots for the
// efficiency figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of float64 observations.
type Summary struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean (0 with no observations).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Var returns the population variance.
func (s *Summary) Var() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		return 0 // numeric noise
	}
	return v
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 with none).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with none).
func (s *Summary) Max() float64 { return s.max }

// Histogram counts integer observations into fixed-width bins.
type Histogram struct {
	BinWidth int
	bins     map[int]int64
	total    int64
}

// NewHistogram returns a histogram with the given bin width (≥ 1).
func NewHistogram(binWidth int) *Histogram {
	if binWidth < 1 {
		panic(fmt.Sprintf("stats: bin width %d < 1", binWidth))
	}
	return &Histogram{BinWidth: binWidth, bins: make(map[int]int64)}
}

// Add records one observation. Binning uses floor division so negative
// observations land in the bin whose low edge is at or below them
// (plain v/BinWidth truncates toward zero, putting −1 and +1 in bin 0
// and misreporting low edges for negatives).
func (h *Histogram) Add(v int) {
	k := v / h.BinWidth
	if v%h.BinWidth != 0 && v < 0 {
		k--
	}
	h.bins[k]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Percentile returns the p-th percentile (0 < p ≤ 100) of the
// observations in h, resolved to the low edge of the bin where the
// cumulative count reaches rank ⌈p/100·N⌉ — with BinWidth 1 that is
// the exact order statistic. An empty histogram reports 0. Out-of-range
// p is clamped, so Percentile(h, 50)/(h, 95)/(h, 99) are always safe
// summaries for dumps and tables.
func Percentile(h *Histogram, p float64) int {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	edges, counts := h.Bins()
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return edges[i]
		}
	}
	return edges[len(edges)-1]
}

// Bins returns (lowEdge, count) pairs in ascending order.
func (h *Histogram) Bins() (edges []int, counts []int64) {
	keys := make([]int, 0, len(h.bins))
	for k := range h.bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		edges = append(edges, k*h.BinWidth)
		counts = append(counts, h.bins[k])
	}
	return edges, counts
}

// Table renders rows of cells as a dissertation-style ASCII table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly (4 significant decimals, trimmed).
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	if t.Header != nil {
		measure(t.Header)
	}
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, " %-*s |", width[i], c)
		}
		b.WriteByte('\n')
	}
	if t.Header != nil {
		writeRow(t.Header)
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			b.WriteString(strings.Repeat("-", width[i]+2))
			b.WriteString("|")
		}
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// PlotSeries is one named curve for Plot.
type PlotSeries struct {
	Label string
	X, Y  []float64
}

// Plot renders curves as an ASCII chart (rows = Y axis, cols = X axis),
// in the spirit of Figs. 3.13–3.15. Each series is drawn with a distinct
// rune; overlapping points show the later series.
func Plot(width, height int, series []PlotSeries) string {
	if width < 8 || height < 4 {
		panic(fmt.Sprintf("stats: plot %dx%d too small", width, height))
	}
	marks := []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first {
		return "(no data)\n"
	}
	// Degenerate ranges still render: a single-X data set collapses to
	// one column (mirroring the ymax==ymin widening below) instead of
	// claiming there is no data.
	xflat := xmax == xmin
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			col := 0
			if !xflat {
				col = int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			}
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.4f ┤\n", ymax)
	for _, row := range grid {
		b.WriteString("         │")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8.4f └%s\n", ymin, strings.Repeat("─", width))
	fmt.Fprintf(&b, "          %-10.4f%*s\n", xmin, width-10, fmt.Sprintf("%.4f", xmax))
	for si, s := range series {
		fmt.Fprintf(&b, "          %c %s\n", marks[si%len(marks)], s.Label)
	}
	return b.String()
}

// heatRamp maps intensity 0..1 to a cell rune, dimmest to brightest.
const heatRamp = " .:-=+*#%@"

// Heatmap renders a labelled matrix of non-negative values as an ASCII
// intensity grid — one row per label, one column per entry — used for
// the bank-conflict and network-occupancy observatory views. Intensity
// is scaled to the global maximum; zero cells stay blank, and any
// non-zero cell renders at least the dimmest non-blank rune so sparse
// activity is never invisible. Rows shorter than the widest row are
// padded with blanks.
func Heatmap(rowLabels []string, rows [][]int64) string {
	if len(rowLabels) != len(rows) {
		panic(fmt.Sprintf("stats: %d labels for %d heatmap rows", len(rowLabels), len(rows)))
	}
	var max int64
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
		for _, v := range r {
			if v > max {
				max = v
			}
		}
	}
	if cols == 0 {
		return "(no data)\n"
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	ramp := []rune(heatRamp)
	var b strings.Builder
	for i, r := range rows {
		fmt.Fprintf(&b, "%-*s │", labelW, rowLabels[i])
		for c := 0; c < cols; c++ {
			var v int64
			if c < len(r) {
				v = r[c]
			}
			switch {
			case v <= 0 || max == 0:
				b.WriteRune(ramp[0])
			default:
				idx := int(v * int64(len(ramp)-1) / max)
				if idx == 0 {
					idx = 1 // non-zero activity must be visible
				}
				b.WriteRune(ramp[idx])
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s └%s\n", labelW, "", strings.Repeat("─", cols))
	fmt.Fprintf(&b, "%-*s  scale: max=%d, ramp=%q\n", labelW, "", max, heatRamp)
	return b.String()
}
