package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 2.5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Var()-1.25) > 1e-12 {
		t.Fatalf("Var = %v, want 1.25", s.Var())
	}
	if math.Abs(s.Std()-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestSummaryProperties(t *testing.T) {
	f := func(vsRaw []int8) bool {
		if len(vsRaw) == 0 {
			return true
		}
		var s Summary
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vsRaw {
			fv := float64(v)
			s.Add(fv)
			lo = math.Min(lo, fv)
			hi = math.Max(hi, fv)
		}
		return s.Min() == lo && s.Max() == hi &&
			s.Mean() >= lo-1e-9 && s.Mean() <= hi+1e-9 && s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{0, 5, 9, 10, 19, 25} {
		h.Add(v)
	}
	edges, counts := h.Bins()
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0] != 0 || counts[0] != 3 {
		t.Fatalf("bin 0: edge %d count %d", edges[0], counts[0])
	}
	if edges[1] != 10 || counts[1] != 2 {
		t.Fatalf("bin 1: edge %d count %d", edges[1], counts[1])
	}
	if edges[2] != 20 || counts[2] != 1 {
		t.Fatalf("bin 2: edge %d count %d", edges[2], counts[2])
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(0)
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"Banks", "Latency"}}
	tb.AddRow(256, 257)
	tb.AddRow(8, 9)
	out := tb.String()
	if !strings.Contains(out, "| Banks | Latency |") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "| 256") || !strings.Contains(out, "| 8  ") {
		t.Fatalf("rows missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
}

func TestTableFloatsTrimmed(t *testing.T) {
	tb := &Table{}
	tb.AddRow(0.5000, 1.0, 0.1942)
	out := tb.String()
	if !strings.Contains(out, "0.5") || strings.Contains(out, "0.5000") {
		t.Fatalf("float not trimmed:\n%s", out)
	}
	if !strings.Contains(out, "| 1 ") {
		t.Fatalf("1.0 should render as 1:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{1.0: "1", 0.5: "0.5", 0.1942: "0.1942", 0.12345: "0.1235"}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	out := Plot(40, 10, []PlotSeries{
		{Label: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Label: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	})
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("marks missing:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	if out := Plot(40, 10, nil); out != "(no data)\n" {
		t.Fatalf("empty plot = %q", out)
	}
}

func TestPlotPanicsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Plot(2, 2, nil)
}

func TestPlotFlatLine(t *testing.T) {
	// ymax == ymin must not divide by zero.
	out := Plot(20, 5, []PlotSeries{{Label: "flat", X: []float64{0, 1}, Y: []float64{1, 1}}})
	if !strings.Contains(out, "flat") {
		t.Fatalf("flat plot broken:\n%s", out)
	}
}

func TestHistogramNegativeFloorBinning(t *testing.T) {
	// Regression: v/BinWidth truncates toward zero, so −1 and +1 used to
	// share bin 0 and negative low edges were off by one bin.
	h := NewHistogram(10)
	for _, v := range []int{-15, -10, -1, 1, 9, 10} {
		h.Add(v)
	}
	edges, counts := h.Bins()
	wantEdges := []int{-20, -10, 0, 10}
	wantCounts := []int64{1, 2, 2, 1}
	if len(edges) != len(wantEdges) {
		t.Fatalf("edges = %v, want %v", edges, wantEdges)
	}
	for i := range wantEdges {
		if edges[i] != wantEdges[i] || counts[i] != wantCounts[i] {
			t.Fatalf("bin %d = (%d,%d), want (%d,%d)",
				i, edges[i], counts[i], wantEdges[i], wantCounts[i])
		}
	}
}

func TestPlotSingleXColumn(t *testing.T) {
	// Regression: xmax == xmin with real data used to return "(no data)";
	// it must render a single column instead, like the flat-Y case.
	out := Plot(20, 5, []PlotSeries{{Label: "col", X: []float64{3, 3, 3}, Y: []float64{0, 1, 2}}})
	if strings.Contains(out, "(no data)") {
		t.Fatalf("single-X plot reported no data:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "col") {
		t.Fatalf("single-X plot missing marks or legend:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap([]string{"bank0", "bank1"}, [][]int64{
		{0, 1, 9},
		{9, 0}, // short row pads with blanks
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "bank0 │") || !strings.HasPrefix(lines[1], "bank1 │") {
		t.Fatalf("labels wrong:\n%s", out)
	}
	row0 := strings.TrimPrefix(lines[0], "bank0 │")
	if row0 != " .@" {
		t.Fatalf("row0 cells = %q, want \" .@\"", row0)
	}
	row1 := strings.TrimPrefix(lines[1], "bank1 │")
	if row1 != "@  " {
		t.Fatalf("row1 cells = %q, want \"@  \"", row1)
	}
	if !strings.Contains(out, "max=9") {
		t.Fatalf("scale line missing:\n%s", out)
	}
}

func TestHeatmapEmptyAndMismatch(t *testing.T) {
	if out := Heatmap(nil, nil); out != "(no data)\n" {
		t.Fatalf("empty heatmap = %q", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on label/row mismatch")
		}
	}()
	Heatmap([]string{"a"}, nil)
}

func TestPercentileExactOrderStatistics(t *testing.T) {
	// BinWidth 1 makes Percentile the exact order statistic of rank
	// ceil(p/100*N).
	h := NewHistogram(1)
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	for _, tc := range []struct {
		p    float64
		want int
	}{
		{1, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100},
		{0, 1},     // clamps up to rank 1
		{-5, 1},    // clamps negative p
		{150, 100}, // clamps above 100
	} {
		if got := Percentile(h, tc.p); got != tc.want {
			t.Errorf("Percentile(1..100, %v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(NewHistogram(1), 50); got != 0 {
		t.Fatalf("Percentile(empty, 50) = %d, want 0", got)
	}
}

func TestPercentileSingleObservation(t *testing.T) {
	h := NewHistogram(1)
	h.Add(42)
	for _, p := range []float64{1, 50, 99, 100} {
		if got := Percentile(h, p); got != 42 {
			t.Errorf("Percentile({42}, %v) = %d, want 42", p, got)
		}
	}
}

func TestPercentileSkewedMass(t *testing.T) {
	// 99 observations at 5, one at 1000: p50/p95 must stay at the bulk,
	// p100 must find the outlier.
	h := NewHistogram(1)
	for i := 0; i < 99; i++ {
		h.Add(5)
	}
	h.Add(1000)
	if got := Percentile(h, 50); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := Percentile(h, 95); got != 5 {
		t.Errorf("p95 = %d, want 5", got)
	}
	if got := Percentile(h, 100); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
}

func TestPercentileWideBinsReportLowEdge(t *testing.T) {
	h := NewHistogram(10)
	h.Add(7)  // bin [0,10)
	h.Add(23) // bin [20,30)
	if got := Percentile(h, 50); got != 0 {
		t.Errorf("p50 = %d, want low edge 0", got)
	}
	if got := Percentile(h, 100); got != 20 {
		t.Errorf("p100 = %d, want low edge 20", got)
	}
}

func TestPercentileNegativeObservations(t *testing.T) {
	h := NewHistogram(1)
	for _, v := range []int{-10, -5, 0, 5, 10} {
		h.Add(v)
	}
	if got := Percentile(h, 1); got != -10 {
		t.Errorf("p1 = %d, want -10", got)
	}
	if got := Percentile(h, 60); got != 0 {
		t.Errorf("p60 = %d, want 0", got)
	}
	if got := Percentile(h, 100); got != 10 {
		t.Errorf("p100 = %d, want 10", got)
	}
}
