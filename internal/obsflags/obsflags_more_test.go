package obsflags

import (
	"flag"
	"path/filepath"
	"testing"
)

// TestFlagDefaults pins the registered flag set and its defaults: the
// cmd/ tools share this contract.
func TestFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	for _, name := range []string{"metrics-out", "trace-out", "http", "sample"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if ob.MetricsOut != "" || ob.TraceOut != "" || ob.HTTPAddr != "" {
		t.Errorf("output flags must default empty, got %+v", ob)
	}
	if ob.Every != 1000 {
		t.Errorf("-sample default = %d, want 1000", ob.Every)
	}
}

// TestOpenForce builds the registry and sampler with no flags set, the
// mode the experiment driver uses when a report always needs metrics.
func TestOpenForce(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(true); err != nil {
		t.Fatal(err)
	}
	if ob.Reg == nil || ob.Sampler == nil {
		t.Fatal("Open(true) must build the registry and sampler")
	}
	if ob.Trace != nil {
		t.Fatal("Open(true) without -trace-out must not build a trace")
	}
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenBadHTTPAddr pins the error path: an unbindable -http address
// fails Open instead of dying later in a goroutine.
func TestOpenBadHTTPAddr(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	if err := fs.Parse([]string{"-http", "256.256.256.256:0"}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(false); err == nil {
		ob.Close()
		t.Fatal("Open with an unbindable -http address must fail")
	}
}

// TestCloseMetricsOutError pins the error path for an uncreatable
// -metrics-out target.
func TestCloseMetricsOutError(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	bad := filepath.Join(t.TempDir(), "missing", "out.prom")
	if err := fs.Parse([]string{"-metrics-out", bad}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	if err := ob.Close(); err == nil {
		t.Fatal("Close must surface the metrics file creation error")
	}
}

// TestCloseTraceOutError pins the error path for an uncreatable
// -trace-out target.
func TestCloseTraceOutError(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	bad := filepath.Join(t.TempDir(), "missing", "trace.jsonl")
	if err := fs.Parse([]string{"-trace-out", bad}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	if ob.Trace == nil {
		t.Fatal("-trace-out must build the trace")
	}
	if err := ob.Close(); err == nil {
		t.Fatal("Close must surface the trace file creation error")
	}
}

// TestHeatRowsUnobserved pins the nil fast path.
func TestHeatRowsUnobserved(t *testing.T) {
	ob := &Observatory{}
	labels, rows := ob.HeatRows("family", "p", true)
	if labels != nil || rows != nil {
		t.Fatalf("unobserved HeatRows = %v, %v; want nil, nil", labels, rows)
	}
}
