package obsflags

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfm/internal/metrics"
	"cfm/internal/sim"
)

func TestUnsetFlagsStayDisabled(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if ob.Wanted() {
		t.Fatal("no flags set, but Wanted() = true")
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	if ob.Reg != nil || ob.Sampler != nil || ob.Trace != nil {
		t.Fatal("Open(false) with no flags must leave everything nil")
	}
	ob.Attach(sim.NewClock()) // must not panic
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsOutFormats(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		file, want string
	}{
		{"out.prom", "# TYPE hits counter\nhits 3\n"},
		{"out.jsonl", `{"slot":0,"values":{"hits":3}}` + "\n"},
	} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		ob := Flags(fs)
		path := filepath.Join(dir, tc.file)
		if err := fs.Parse([]string{"-metrics-out", path, "-sample", "10"}); err != nil {
			t.Fatal(err)
		}
		if err := ob.Open(false); err != nil {
			t.Fatal(err)
		}
		ob.Reg.Counter("hits").Add(3)
		ob.Sampler.Tick(0, sim.PhaseUpdate)
		if err := ob.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != tc.want {
			t.Errorf("%s: got %q, want %q", tc.file, got, tc.want)
		}
	}
}

func TestTraceOut(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := fs.Parse([]string{"-trace-out", path}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	if ob.Trace == nil {
		t.Fatal("-trace-out must allocate the trace")
	}
	ob.Trace.AddEvent(sim.Event{Slot: 4, Who: "P1", What: "read"})
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"slot":4,"who":"P1","what":"read"}` + "\n"
	if string(got) != want {
		t.Errorf("trace file: got %q, want %q", got, want)
	}
}

func TestHeatRows(t *testing.T) {
	ob := &Observatory{}
	if labels, rows := ob.HeatRows("x", "module", true); labels != nil || rows != nil {
		t.Fatal("nil sampler must yield no rows")
	}

	reg := metrics.New()
	c0 := reg.Counter(`conf{module="0"}`)
	c1 := reg.Counter(`conf{module="1"}`)
	ob.Sampler = metrics.NewSampler(reg, 10)
	for i, add := range []int64{0, 3, 1} {
		c0.Add(add)
		c1.Add(2 * add)
		ob.Sampler.Tick(sim.Slot(10*i), sim.PhaseUpdate)
	}

	labels, rows := ob.HeatRows("conf", "module", true)
	if len(labels) != 2 || labels[0] != "module 0" || labels[1] != "module 1" {
		t.Fatalf("labels = %v", labels)
	}
	// Cumulative 0,3,4 differenced back to per-interval 0,3,1.
	if got := rows[0]; got[0] != 0 || got[1] != 3 || got[2] != 1 {
		t.Errorf("diffed row 0 = %v, want [0 3 1]", got)
	}
	if got := rows[1]; got[0] != 0 || got[1] != 6 || got[2] != 2 {
		t.Errorf("diffed row 1 = %v, want [0 6 2]", got)
	}

	// Without differencing the cumulative values come through as-is.
	labels, rows = ob.HeatRows("conf", "module", false)
	if len(labels) != 2 || rows[0][2] != 4 || rows[1][2] != 8 {
		t.Errorf("raw rows = %v %v", rows[0], rows[1])
	}

	if l, r := ob.HeatRows("absent", "module", false); l != nil || r != nil {
		t.Errorf("absent family must yield no rows, got %v %v", l, r)
	}
}

func TestHTTPEndpoint(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	if err := fs.Parse([]string{"-http", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	if ob.srv == nil || !strings.Contains(ob.srv.Addr, "127.0.0.1") {
		t.Fatalf("server not started: %+v", ob.srv)
	}
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
}
