package obsflags

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfm/internal/flight"
	"cfm/internal/metrics"
	"cfm/internal/sim"
)

func TestUnsetFlagsStayDisabled(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if ob.Wanted() {
		t.Fatal("no flags set, but Wanted() = true")
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	if ob.Reg != nil || ob.Sampler != nil || ob.Trace != nil {
		t.Fatal("Open(false) with no flags must leave everything nil")
	}
	ob.Attach(sim.NewClock()) // must not panic
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsOutFormats(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		file, want string
	}{
		{"out.prom", "# TYPE hits counter\nhits 3\n"},
		{"out.jsonl", `{"slot":0,"values":{"hits":3}}` + "\n"},
	} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		ob := Flags(fs)
		path := filepath.Join(dir, tc.file)
		if err := fs.Parse([]string{"-metrics-out", path, "-sample", "10"}); err != nil {
			t.Fatal(err)
		}
		if err := ob.Open(false); err != nil {
			t.Fatal(err)
		}
		ob.Reg.Counter("hits").Add(3)
		ob.Sampler.Tick(0, sim.PhaseUpdate)
		if err := ob.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != tc.want {
			t.Errorf("%s: got %q, want %q", tc.file, got, tc.want)
		}
	}
}

func TestTraceOut(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := fs.Parse([]string{"-trace-out", path}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	if ob.Trace == nil {
		t.Fatal("-trace-out must allocate the trace")
	}
	ob.Trace.AddEvent(sim.Event{Slot: 4, Who: "P1", What: "read"})
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"slot":4,"who":"P1","what":"read"}` + "\n"
	if string(got) != want {
		t.Errorf("trace file: got %q, want %q", got, want)
	}
}

func TestHeatRows(t *testing.T) {
	ob := &Observatory{}
	if labels, rows := ob.HeatRows("x", "module", true); labels != nil || rows != nil {
		t.Fatal("nil sampler must yield no rows")
	}

	reg := metrics.New()
	c0 := reg.Counter(`conf{module="0"}`)
	c1 := reg.Counter(`conf{module="1"}`)
	ob.Sampler = metrics.NewSampler(reg, 10)
	for i, add := range []int64{0, 3, 1} {
		c0.Add(add)
		c1.Add(2 * add)
		ob.Sampler.Tick(sim.Slot(10*i), sim.PhaseUpdate)
	}

	labels, rows := ob.HeatRows("conf", "module", true)
	if len(labels) != 2 || labels[0] != "module 0" || labels[1] != "module 1" {
		t.Fatalf("labels = %v", labels)
	}
	// Cumulative 0,3,4 differenced back to per-interval 0,3,1.
	if got := rows[0]; got[0] != 0 || got[1] != 3 || got[2] != 1 {
		t.Errorf("diffed row 0 = %v, want [0 3 1]", got)
	}
	if got := rows[1]; got[0] != 0 || got[1] != 6 || got[2] != 2 {
		t.Errorf("diffed row 1 = %v, want [0 6 2]", got)
	}

	// Without differencing the cumulative values come through as-is.
	labels, rows = ob.HeatRows("conf", "module", false)
	if len(labels) != 2 || rows[0][2] != 4 || rows[1][2] != 8 {
		t.Errorf("raw rows = %v %v", rows[0], rows[1])
	}

	if l, r := ob.HeatRows("absent", "module", false); l != nil || r != nil {
		t.Errorf("absent family must yield no rows, got %v %v", l, r)
	}
}

func TestHTTPEndpoint(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	if err := fs.Parse([]string{"-http", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	if ob.srv == nil || !strings.Contains(ob.srv.Addr, "127.0.0.1") {
		t.Fatalf("server not started: %+v", ob.srv)
	}
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSpansOutFormats(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		file string
		want string // a substring the chosen format must contain
	}{
		{"spans.jsonl", `{"slot":3,"id":"0000000200000003","stage":"issue","actor":2,"arg":0}`},
		{"spans.json", `"traceEvents"`},
	} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		ob := Flags(fs)
		path := filepath.Join(dir, tc.file)
		if err := fs.Parse([]string{"-spans-out", path, "-spans-limit", "64"}); err != nil {
			t.Fatal(err)
		}
		if !ob.Wanted() {
			t.Fatal("-spans-out set, but Wanted() = false")
		}
		if err := ob.Open(false); err != nil {
			t.Fatal(err)
		}
		if ob.Flight == nil || ob.Flight.Cap() != 64 {
			t.Fatalf("-spans-limit 64: recorder = %+v", ob.Flight)
		}
		ob.Flight.Emit(flight.ComposeID(2, 3), 3, flight.StageIssue, 2, 0)
		if err := ob.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(got), tc.want) {
			t.Errorf("%s: got %q, want substring %q", tc.file, got, tc.want)
		}
	}
}

func TestAttachRegistersFlightState(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := fs.Parse([]string{"-spans-out", path}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewClock()
	ob.Attach(eng)
	ob.Flight.Emit(1, 0, flight.StageIssue, 0, 0)
	// The recorder must round-trip through the engine checkpoint: that is
	// what AttachState("flight", ...) is for.
	var buf strings.Builder
	if err := eng.Checkpoint(&writerTo{&buf}); err != nil {
		t.Fatal(err)
	}
	ob.Flight.Reset()
	if err := eng.Restore(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if ob.Flight.Len() != 1 {
		t.Fatalf("flight events after restore = %d, want 1", ob.Flight.Len())
	}
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
}

// writerTo adapts a strings.Builder to io.Writer (Checkpoint wants one).
type writerTo struct{ b *strings.Builder }

func (w *writerTo) Write(p []byte) (int, error) { return w.b.Write(p) }

func TestCloseStampsEngineCounters(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	path := filepath.Join(t.TempDir(), "m.prom")
	if err := fs.Parse([]string{"-metrics-out", path}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewClock()
	eng.SetSkipAhead(true)
	next := sim.Slot(0)
	eng.Register(&sim.FuncTicker{
		OnTick: func(t sim.Slot, ph sim.Phase) {
			if ph == sim.PhaseIssue && t == next {
				next += 25
			}
		},
		NextEvent: func(now sim.Slot) sim.Slot {
			if next < now {
				return now
			}
			return next
		},
	})
	ob.Attach(eng)
	eng.Run(100)
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "engine_slots_skipped_total") ||
		!strings.Contains(string(got), "engine_jumps_total") {
		t.Fatalf("Close must stamp engine counters into the exposition:\n%s", got)
	}
	if strings.Contains(string(got), "engine_slots_skipped_total 0\n") {
		t.Fatalf("skip-ahead run stamped zero skipped slots:\n%s", got)
	}
}

// shardedLoad is a minimal epoch-safe fleet member so the parallel
// engine batches slots into episodes under EpochAuto.
type shardedLoad struct {
	vals []int64
}

func (s *shardedLoad) Tick(t sim.Slot, ph sim.Phase)            { sim.SerialTick(s, t, ph) }
func (s *shardedLoad) Shards() int                              { return len(s.vals) }
func (s *shardedLoad) TickShard(_ sim.Slot, _ sim.Phase, i int) { s.vals[i]++ }
func (s *shardedLoad) EpochSafe() bool                          { return true }

// TestCloseExcludesSyncCounters pins the -metrics-out contract: the
// exported exposition carries only counters derivable from checkpointed
// clock state (skipped, jumps), never the engine's process-lifetime
// synchronization counters — a resumed run only counts post-resume
// barrier work, so stamping crossings/epochs would break the
// byte-identity between a resumed and an uninterrupted run. Those live
// on /statusz and the /metrics scrape instead (see internal/metrics).
func TestCloseExcludesSyncCounters(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ob := Flags(fs)
	path := filepath.Join(t.TempDir(), "m.prom")
	if err := fs.Parse([]string{"-metrics-out", path}); err != nil {
		t.Fatal(err)
	}
	if err := ob.Open(false); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewParallelClock(2)
	defer eng.Close()
	eng.Register(&shardedLoad{vals: make([]int64, 8)})
	ob.Attach(eng)
	eng.Run(40)
	if eng.BarrierCrossings() == 0 || eng.Epochs() == 0 {
		t.Fatalf("parallel run reported no synchronization: crossings=%d epochs=%d",
			eng.BarrierCrossings(), eng.Epochs())
	}
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"engine_barrier_crossings_total", "engine_epochs_total"} {
		if strings.Contains(string(got), name) {
			t.Fatalf("%s leaked into the -metrics-out exposition (it is not resumable):\n%s", name, got)
		}
	}
	for _, name := range []string{"engine_slots_skipped_total", "engine_jumps_total"} {
		if !strings.Contains(string(got), name) {
			t.Fatalf("Close must still stamp %s into the exposition:\n%s", name, got)
		}
	}
}
