// Package obsflags wires the observability command-line flags shared by
// the cmd/ tools (-metrics-out, -trace-out, -http, -sample, -spans-out)
// to the concrete objects behind them: the metrics registry, the
// slot-sampled time-series recorder, the event trace, the flight
// recorder, and the live profiling endpoint.
package obsflags

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"cfm/internal/flight"
	"cfm/internal/metrics"
	"cfm/internal/sim"
)

// Observatory holds the parsed observability flags and, once Open has
// run, the live objects behind them. When no flag is set (and Open is
// not forced) every field stays nil, so the nil fast paths keep the
// simulation unobserved at zero cost.
type Observatory struct {
	MetricsOut string // -metrics-out: metrics file (*.jsonl: series; else Prometheus)
	TraceOut   string // -trace-out: event trace file (JSONL)
	HTTPAddr   string // -http: live /metrics + expvar + pprof address
	Every      int64  // -sample: slots between time-series samples

	CheckpointOut string // -checkpoint-out: write a checkpoint here when the run ends
	Resume        string // -resume: restore engine state from this checkpoint before running

	SpansOut   string // -spans-out: flight-recorder export (*.json: Chrome trace; else JSONL)
	SpansLimit int    // -spans-limit: flight recorder ring capacity (events)

	Reg     *metrics.Registry
	Sampler *metrics.Sampler
	Trace   *sim.Trace
	Flight  *flight.Recorder   // non-nil when -spans-out is set
	Status  *metrics.StatusVar // non-nil when -http is set
	srv     *http.Server
	engines []sim.Engine // every engine Attach saw, for the post-run stamp
}

// Flags registers the observability flags on fs and returns the
// observatory they fill in. Call Open after fs.Parse.
func Flags(fs *flag.FlagSet) *Observatory {
	ob := &Observatory{}
	fs.StringVar(&ob.MetricsOut, "metrics-out", "",
		"write metrics to this file: *.jsonl gets the sampled time series, anything else the Prometheus exposition")
	fs.StringVar(&ob.TraceOut, "trace-out", "",
		"write the event trace to this file as JSONL (traced commands only)")
	fs.StringVar(&ob.HTTPAddr, "http", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address during the run")
	fs.Int64Var(&ob.Every, "sample", 1000, "slots between time-series samples")
	fs.StringVar(&ob.CheckpointOut, "checkpoint-out", "",
		"write a checkpoint of the final engine state to this file")
	fs.StringVar(&ob.Resume, "resume", "",
		"restore engine state from this checkpoint before running")
	fs.StringVar(&ob.SpansOut, "spans-out", "",
		"write the flight recorder's access spans to this file: *.json gets Chrome trace-event JSON (Perfetto), anything else JSONL")
	fs.IntVar(&ob.SpansLimit, "spans-limit", flight.DefaultLimit,
		"flight recorder capacity in events (the ring keeps the newest)")
	return ob
}

// MaybeResume restores eng from the -resume checkpoint when the flag is
// set; a no-op otherwise. Call after the scenario has registered every
// component on eng, before running.
func (ob *Observatory) MaybeResume(eng sim.Engine) error {
	if ob.Resume == "" {
		return nil
	}
	f, err := os.Open(ob.Resume)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := eng.Restore(f); err != nil {
		return fmt.Errorf("resume from %s: %w", ob.Resume, err)
	}
	fmt.Fprintf(os.Stderr, "resumed from %s at slot %d\n", ob.Resume, eng.Now())
	return nil
}

// MaybeCheckpoint writes eng's state to the -checkpoint-out file when
// the flag is set; a no-op otherwise. Call after the run has finished.
func (ob *Observatory) MaybeCheckpoint(eng sim.Engine) error {
	if ob.CheckpointOut == "" {
		return nil
	}
	f, err := os.Create(ob.CheckpointOut)
	if err != nil {
		return err
	}
	if err := eng.Checkpoint(f); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint to %s: %w", ob.CheckpointOut, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote checkpoint (slot %d) to %s\n", eng.Now(), ob.CheckpointOut)
	return nil
}

// Wanted reports whether any observability flag was set.
func (ob *Observatory) Wanted() bool {
	return ob.MetricsOut != "" || ob.TraceOut != "" || ob.HTTPAddr != "" || ob.SpansOut != ""
}

// Open builds the registry and sampler (and the trace and live endpoint
// when requested). With force=false and no flags set it is a no-op:
// everything stays nil and instrumentation remains free.
func (ob *Observatory) Open(force bool) error {
	if !force && !ob.Wanted() {
		return nil
	}
	ob.Reg = metrics.New()
	ob.Sampler = metrics.NewSampler(ob.Reg, ob.Every)
	if ob.TraceOut != "" {
		ob.Trace = sim.NewTrace()
	}
	if ob.SpansOut != "" {
		ob.Flight = flight.NewRecorder(ob.SpansLimit)
	}
	if ob.HTTPAddr != "" {
		ob.Status = &metrics.StatusVar{}
		srv, err := metrics.ServeStatus(ob.HTTPAddr, ob.Reg, ob.Status)
		if err != nil {
			return err
		}
		ob.srv = srv
		fmt.Fprintf(os.Stderr, "serving /metrics, /healthz, /statusz, /debug/vars, /debug/pprof on http://%s\n", srv.Addr)
	}
	return nil
}

// Attach registers the sampler on an engine so the time series records
// during the run, and attaches the registry and trace to the engine's
// checkpoint state so -checkpoint-out/-resume round-trip them; a no-op
// when observation is off. Attaching to several engines in sequence
// appends their runs to one series (each run's samples restart at
// slot 0).
func (ob *Observatory) Attach(eng sim.Engine) {
	if ob.Sampler != nil {
		ob.Sampler.Attach(eng)
	}
	if ob.Reg != nil {
		eng.AttachState("metrics", ob.Reg)
	}
	if ob.Trace != nil {
		eng.AttachState("trace", ob.Trace)
	}
	if ob.Flight != nil {
		eng.AttachState("flight", ob.Flight)
	}
	if ob.Status != nil {
		ob.Status.Attach(eng)
	}
	if ob.Reg != nil || ob.Status != nil {
		ob.engines = append(ob.engines, eng)
	}
}

// Close writes the requested output files and shuts the live endpoint
// down. Call once, after the last simulation has finished.
//
// Closing also publishes the skip-ahead bookkeeping: the
// engine_slots_skipped_total and engine_jumps_total counters, summed
// over every attached engine, are stamped into the registry HERE, after
// the last run, never during one — skip counts legitimately differ
// between provably equivalent runs (dense vs skip-ahead), so they must
// not contaminate the registry digests the determinism tests compare.
func (ob *Observatory) Close() error {
	ob.stampEngines()
	if ob.MetricsOut != "" {
		if err := ob.writeMetrics(); err != nil {
			return err
		}
	}
	if ob.TraceOut != "" {
		f, err := os.Create(ob.TraceOut)
		if err != nil {
			return err
		}
		if err := metrics.WriteTraceJSONL(f, ob.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote trace to %s\n", ob.TraceOut)
	}
	if ob.SpansOut != "" {
		if err := ob.writeSpans(); err != nil {
			return err
		}
	}
	if ob.srv != nil {
		return ob.srv.Close()
	}
	return nil
}

// stampEngines folds each attached engine's final progress into the
// registry counters and the /statusz source (the last engine wins the
// point-in-time status; the counters accumulate across engines).
func (ob *Observatory) stampEngines() {
	var skipped, jumps int64
	for _, eng := range ob.engines {
		skipped += eng.SlotsRun() - eng.SlotsFired()
		if j, ok := eng.(interface{ Jumps() int64 }); ok {
			jumps += j.Jumps()
		}
		if ob.Status != nil {
			ob.Status.StampEngine(eng)
		}
	}
	if ob.Reg != nil && len(ob.engines) > 0 {
		// Only counters derivable from checkpointed clock state are
		// folded into the exported exposition: a resumed run must
		// write a byte-identical -metrics-out file, and the engine's
		// synchronization counters (BarrierCrossings/Epochs) are
		// process-lifetime values a restore cannot reconstruct. Those
		// stay on the live surfaces — /statusz and the /metrics
		// scrape-time append — which carry point-in-time engine
		// status, not simulated history.
		ob.Reg.Counter("engine_slots_skipped_total").Add(skipped)
		ob.Reg.Counter("engine_jumps_total").Add(jumps)
	}
}

// writeSpans exports the flight recorder: Chrome trace-event JSON for
// *.json (loads in Perfetto / chrome://tracing), JSONL otherwise.
func (ob *Observatory) writeSpans() error {
	f, err := os.Create(ob.SpansOut)
	if err != nil {
		return err
	}
	events := ob.Flight.Events()
	if strings.HasSuffix(ob.SpansOut, ".json") {
		err = flight.WriteChromeTrace(f, events)
	} else {
		err = flight.WriteJSONL(f, events)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d span events to %s (%d dropped by the ring)\n",
		len(events), ob.SpansOut, ob.Flight.Dropped())
	return nil
}

func (ob *Observatory) writeMetrics() error {
	f, err := os.Create(ob.MetricsOut)
	if err != nil {
		return err
	}
	if strings.HasSuffix(ob.MetricsOut, ".jsonl") {
		err = metrics.WriteSeriesJSONL(f, ob.Sampler.Samples)
	} else {
		_, err = io.WriteString(f, metrics.Prometheus(ob.Reg.Snapshot()))
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote metrics to %s\n", ob.MetricsOut)
	return nil
}

// HeatRows extracts one heat-map row per labelled instance of a metric
// family from the sampled series, probing instance labels 0,1,2,...
// until one is absent. With diff=true consecutive samples are
// differenced, turning cumulative counters into per-interval activity;
// gauges should be read as-is (diff=false).
func (ob *Observatory) HeatRows(family, label string, diff bool) (labels []string, rows [][]int64) {
	if ob.Sampler == nil || len(ob.Sampler.Samples) == 0 {
		return nil, nil
	}
	last := ob.Sampler.Samples[len(ob.Sampler.Samples)-1]
	for i := 0; ; i++ {
		name := fmt.Sprintf(`%s{%s="%d"}`, family, label, i)
		if _, ok := last.Values[name]; !ok {
			break
		}
		_, vals := ob.Sampler.Series(name)
		if diff {
			prev := int64(0)
			for j, v := range vals {
				vals[j], prev = v-prev, v
			}
		}
		labels = append(labels, fmt.Sprintf("%s %d", label, i))
		rows = append(rows, vals)
	}
	return labels, rows
}
