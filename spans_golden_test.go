// Golden-file pin for the flight recorder's export formats: the JSONL
// and Chrome-trace (Perfetto) bytes a fixed scenario produces are
// checked into testdata and byte-compared, from both engines. Format
// changes are deliberate acts — regenerate with
//
//	go test -run TestSpansGolden -update-golden .
package cfm_test

import (
	"bytes"
	"os"
	"testing"

	"cfm"
)

// spansGoldenScenario is a small fixed conventional run: enough traffic
// for a few hundred spans, small enough that the golden files stay
// reviewable in a diff.
func spansGoldenScenario(eng cfm.Engine) []cfm.FlightEvent {
	conv := cfm.NewConventional(cfm.ConventionalConfig{
		Processors: 8, Modules: 8, BlockTime: 17,
		AccessRate: 0.05, RetryMean: 8, Seed: 11})
	rec := cfm.NewFlightRecorder(0)
	conv.RecordFlight(rec)
	eng.Register(conv)
	eng.Run(600)
	return rec.Events()
}

func checkSpansGolden(t *testing.T, path string, render func([]cfm.FlightEvent) []byte) {
	t.Helper()
	serial := render(spansGoldenScenario(cfm.NewClock()))
	if len(serial) == 0 {
		t.Fatal("scenario rendered no span bytes; the golden check is vacuous")
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run TestSpansGolden -update-golden .): %v", err)
	}
	if !bytes.Equal(serial, want) {
		t.Errorf("serial span export drifted from %s (%d vs %d bytes; regenerate with -update-golden if deliberate):\n%s",
			path, len(serial), len(want), diffHint(string(want), string(serial)))
	}
	skip := cfm.NewParallelClock(0)
	skip.SetSkipAhead(true)
	if parallel := render(spansGoldenScenario(skip)); !bytes.Equal(parallel, want) {
		t.Errorf("parallel skip-ahead span export drifted from %s:\n%s",
			path, diffHint(string(want), string(parallel)))
	}
}

// TestSpansGoldenJSONL pins the JSONL export bytes.
func TestSpansGoldenJSONL(t *testing.T) {
	checkSpansGolden(t, "testdata/spans_golden.jsonl", func(evs []cfm.FlightEvent) []byte {
		var buf bytes.Buffer
		if err := cfm.WriteFlightJSONL(&buf, evs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
}

// TestSpansGoldenChromeTrace pins the Perfetto-loadable Chrome trace.
func TestSpansGoldenChromeTrace(t *testing.T) {
	checkSpansGolden(t, "testdata/spans_golden.json", func(evs []cfm.FlightEvent) []byte {
		var buf bytes.Buffer
		if err := cfm.WriteFlightChromeTrace(&buf, evs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
}
